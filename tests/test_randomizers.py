"""Unit, statistical, and property tests for repro.core.randomizers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats

from repro.core.randomizers import (
    GaussianRandomizer,
    NullRandomizer,
    UniformRandomizer,
    ValueClassMembership,
    transition_matrix,
)
from repro.exceptions import ValidationError


class TestUniformRandomizer:
    def test_noise_bounded(self, rng):
        r = UniformRandomizer(half_width=2.0)
        noise = r.sample_noise(10_000, seed=rng)
        assert np.all(np.abs(noise) <= 2.0)

    def test_noise_mean_near_zero(self, rng):
        r = UniformRandomizer(half_width=1.0)
        assert abs(r.sample_noise(50_000, seed=rng).mean()) < 0.02

    def test_randomize_adds_noise(self):
        r = UniformRandomizer(half_width=0.5)
        x = np.linspace(0, 1, 100)
        y = r.randomize(x, seed=0)
        assert np.all(np.abs(y - x) <= 0.5)

    def test_randomize_does_not_mutate(self):
        r = UniformRandomizer(half_width=0.5)
        x = np.zeros(10)
        r.randomize(x, seed=0)
        assert np.all(x == 0)

    def test_pdf_normalizes(self):
        r = UniformRandomizer(half_width=3.0)
        grid = np.linspace(-4, 4, 10_001)
        integral = np.trapezoid(r.noise_pdf(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_cdf_limits(self):
        r = UniformRandomizer(half_width=1.0)
        assert r.noise_cdf(-2.0) == 0.0
        assert r.noise_cdf(0.0) == pytest.approx(0.5)
        assert r.noise_cdf(2.0) == 1.0

    def test_privacy_interval_width(self):
        r = UniformRandomizer(half_width=1.0)
        assert r.privacy_interval_width(0.95) == pytest.approx(1.9)
        assert r.privacy_interval_width(1.0) == pytest.approx(2.0)

    def test_support_half_width_validates_coverage(self):
        """Bad coverage fails loudly even though the answer ignores it."""
        r = UniformRandomizer(half_width=1.0)
        assert r.support_half_width(0.5) == 1.0
        with pytest.raises(ValidationError):
            r.support_half_width(2.0)
        with pytest.raises(ValidationError):
            r.support_half_width(0.0)

    def test_from_privacy_roundtrip(self):
        r = UniformRandomizer.from_privacy(0.5, domain_span=10.0, confidence=0.95)
        assert r.privacy_interval_width(0.95) == pytest.approx(5.0)

    def test_support_half_width(self):
        assert UniformRandomizer(2.5).support_half_width() == 2.5

    def test_rejects_bad_half_width(self):
        with pytest.raises(ValidationError):
            UniformRandomizer(half_width=0.0)
        with pytest.raises(ValidationError):
            UniformRandomizer(half_width=-1.0)

    def test_seeded_reproducibility(self):
        r = UniformRandomizer(half_width=1.0)
        a = r.randomize(np.zeros(50), seed=42)
        b = r.randomize(np.zeros(50), seed=42)
        np.testing.assert_array_equal(a, b)


class TestGaussianRandomizer:
    def test_noise_moments(self, rng):
        r = GaussianRandomizer(sigma=2.0)
        noise = r.sample_noise(100_000, seed=rng)
        assert abs(noise.mean()) < 0.03
        assert noise.std() == pytest.approx(2.0, rel=0.02)

    def test_privacy_interval_width(self):
        r = GaussianRandomizer(sigma=1.0)
        # 95% central interval of N(0,1) is +-1.96
        assert r.privacy_interval_width(0.95) == pytest.approx(3.9199, abs=1e-3)

    def test_privacy_unbounded_at_full_confidence(self):
        r = GaussianRandomizer(sigma=1.0)
        assert r.privacy_interval_width(1.0) == np.inf

    def test_from_privacy_roundtrip(self):
        r = GaussianRandomizer.from_privacy(1.0, domain_span=100.0, confidence=0.95)
        assert r.privacy_interval_width(0.95) == pytest.approx(100.0)

    def test_from_privacy_rejects_full_confidence(self):
        with pytest.raises(ValidationError):
            GaussianRandomizer.from_privacy(1.0, 1.0, confidence=1.0)

    def test_support_half_width_quantile(self):
        r = GaussianRandomizer(sigma=1.0)
        assert r.support_half_width(0.99) == pytest.approx(
            stats.norm.ppf(0.995), rel=1e-6
        )

    def test_support_rejects_full_coverage(self):
        with pytest.raises(ValidationError):
            GaussianRandomizer(sigma=1.0).support_half_width(1.0)


class TestValueClassMembership:
    def test_discloses_midpoints(self, unit_partition):
        r = ValueClassMembership(unit_partition)
        out = r.randomize([0.01, 0.99, 0.55])
        np.testing.assert_allclose(out, [0.05, 0.95, 0.55])

    def test_deterministic(self, unit_partition):
        r = ValueClassMembership(unit_partition)
        x = np.linspace(0, 1, 37)
        np.testing.assert_array_equal(r.randomize(x), r.randomize(x))

    def test_privacy_is_interval_width(self, unit_partition):
        r = ValueClassMembership(unit_partition)
        assert r.privacy_interval_width(0.5) == pytest.approx(0.1)
        assert r.privacy_interval_width(0.99) == pytest.approx(0.1)

    def test_empty_input(self, unit_partition):
        r = ValueClassMembership(unit_partition)
        assert r.randomize([]).size == 0

    def test_empty_input_returns_copy(self, unit_partition):
        """The no-mutation contract holds for empty input too."""
        r = ValueClassMembership(unit_partition)
        x = np.empty(0)
        assert r.randomize(x) is not x


class TestNullRandomizer:
    def test_identity(self):
        r = NullRandomizer()
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(r.randomize(x), x)

    def test_returns_copy(self):
        r = NullRandomizer()
        x = np.array([1.0])
        out = r.randomize(x)
        out[0] = 99.0
        assert x[0] == 1.0

    def test_zero_privacy(self):
        assert NullRandomizer().privacy_interval_width(0.95) == 0.0


class TestTransitionMatrix:
    @pytest.mark.parametrize("method", ["integrated", "density"])
    def test_columns_sum_to_one(self, unit_partition, method):
        r = UniformRandomizer(half_width=0.15)
        y_part = unit_partition.expanded(0.15)
        m = transition_matrix(y_part, unit_partition, r, method=method)
        np.testing.assert_allclose(m.sum(axis=0), 1.0, atol=0.05)

    def test_integrated_exact_column_sums(self, unit_partition):
        r = UniformRandomizer(half_width=0.15)
        y_part = unit_partition.expanded(0.15)
        m = transition_matrix(y_part, unit_partition, r, method="integrated")
        np.testing.assert_allclose(m.sum(axis=0), 1.0, atol=1e-12)

    def test_non_negative(self, unit_partition):
        r = GaussianRandomizer(sigma=0.1)
        y_part = unit_partition.expanded(0.5)
        m = transition_matrix(y_part, unit_partition, r)
        assert m.min() >= 0.0

    def test_unknown_method_rejected(self, unit_partition):
        r = UniformRandomizer(half_width=0.1)
        with pytest.raises(ValidationError):
            transition_matrix(unit_partition, unit_partition, r, method="nope")

    def test_shape(self, unit_partition):
        r = UniformRandomizer(half_width=0.1)
        y_part = unit_partition.expanded(0.1)
        m = transition_matrix(y_part, unit_partition, r)
        assert m.shape == (y_part.n_intervals, unit_partition.n_intervals)


@given(
    half_width=st.floats(1e-3, 1e3),
    confidence=st.floats(0.01, 1.0),
)
def test_property_uniform_privacy_monotone(half_width, confidence):
    r = UniformRandomizer(half_width=half_width)
    width = r.privacy_interval_width(confidence)
    assert 0 < width <= 2 * half_width + 1e-9
    # privacy grows with confidence
    if confidence < 0.99:
        assert width < r.privacy_interval_width(min(confidence + 0.01, 1.0)) + 1e-12


@given(
    privacy=st.floats(0.05, 4.0),
    span=st.floats(0.1, 1e5),
    kind=st.sampled_from(["uniform", "gaussian"]),
)
def test_property_from_privacy_inverts(privacy, span, kind):
    from repro.core.privacy import noise_for_privacy, privacy_of_randomizer

    r = noise_for_privacy(kind, privacy, span, 0.95)
    assert privacy_of_randomizer(r, span, 0.95) == pytest.approx(privacy, rel=1e-9)
