"""E12 — Extension: privacy-preserving association mining (paper's future work).

Randomized-response baskets with channel-inversion support recovery.
Shape: recovered supports approximate the true supports; the naive count
on randomized data is badly biased; the planted frequent itemsets are
re-identified at reasonable keep probabilities; estimation error grows as
keep_prob approaches 0.5 (full deniability).
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.experiments import format_table
from repro.mining import MaskMiner, RandomizedResponse, generate_baskets
from repro.mining.apriori import frequent_itemsets, support

KEEP_PROBS = (0.95, 0.9, 0.8, 0.7)
TARGETS = ({0}, {0, 1}, {2, 3, 4})


def _label(itemset) -> str:
    return "{" + ",".join(str(i) for i in sorted(itemset)) + "}"


@experiment(
    "e12",
    title="Association mining over randomized-response baskets",
    tags=("mining", "smoke"),
    seed=1200,
)
def run_e12(ctx):
    n = ctx.scaled(20_000)
    ctx.record(
        n=n,
        n_items=12,
        keep_probs=",".join(f"{k:g}" for k in KEEP_PROBS),
    )
    baskets = generate_baskets(n, 12, seed=ctx.seed)
    truth = {frozenset(t): support(baskets, t) for t in TARGETS}
    results = {}
    for keep in KEEP_PROBS:
        rr = RandomizedResponse(keep)
        disclosed = rr.randomize(baskets, seed=ctx.seed + 1)
        miner = MaskMiner(rr)
        results[keep] = {
            frozenset(t): {
                "estimated": miner.estimate_support(disclosed, t),
                "naive": support(disclosed, t),
            }
            for t in TARGETS
        }
    mined = MaskMiner(RandomizedResponse(0.9)).frequent_itemsets(
        RandomizedResponse(0.9).randomize(baskets, seed=ctx.seed + 2), 0.15
    )

    rows = []
    for keep in KEEP_PROBS:
        for itemset, values in results[keep].items():
            rows.append(
                (
                    f"{keep:g}",
                    _label(itemset),
                    f"{truth[itemset]:.3f}",
                    f"{values['estimated']:.3f}",
                    f"{values['naive']:.3f}",
                )
            )
    table = format_table(
        ("keep_prob", "itemset", "true supp", "estimated", "naive"),
        rows,
        title="E12: support recovery from randomized-response baskets",
    )
    mined_line = "\nmined at keep=0.9, min_supp=0.15: " + ", ".join(
        _label(s) for s in sorted(mined, key=sorted)
    )
    ctx.report(table + mined_line, name="e12_association_mask")

    metrics = {"n_mined": len(mined)}
    for itemset in truth:
        slug = "_".join(str(i) for i in sorted(itemset))
        metrics[f"true_supp_{slug}"] = float(truth[itemset])
        for keep in KEEP_PROBS:
            metrics[f"est_supp_{slug}_keep{keep:g}"] = float(
                results[keep][itemset]["estimated"]
            )

    # estimates track truth; naive counting does not (for multi-item sets)
    for keep in KEEP_PROBS[:3]:
        for itemset in truth:
            est = results[keep][itemset]["estimated"]
            naive = results[keep][itemset]["naive"]
            assert abs(est - truth[itemset]) < 0.05
            if len(itemset) >= 2 and keep <= 0.9:
                assert abs(est - truth[itemset]) < abs(naive - truth[itemset])
    # planted itemsets are re-discovered
    assert frozenset({0, 1}) in mined
    assert frozenset({2, 3, 4}) in mined

    # error grows as deniability rises
    def err(keep):
        cell = results[keep][frozenset({2, 3, 4})]
        return abs(cell["estimated"] - truth[frozenset({2, 3, 4})])

    assert err(0.7) >= err(0.95) - 0.01
    return metrics


def test_e12_association_mask(benchmark):
    run_experiment(benchmark, "e12")
