"""Known-good fixture: every rule family, done right.

Parsed by ``tests/test_analysis.py`` as a library module and expected
to produce **zero** findings; never imported.
"""

import threading

from repro.exceptions import SerializationError, ValidationError
from repro.utils.rng import ensure_rng


class Accumulator:
    def __init__(self):
        self.lock = threading.Lock()
        self.total = 0  # __init__ mutation: exempt from L001

    def add(self, value):
        with self.lock:
            self.total += value  # guarded where learned: clean

    def snapshot_to(self, sink):
        with self.lock:
            # deliberate single-writer section, justified inline
            sink.flush()  # ppdm: ignore[L002]


def sample(seed, n):
    rng = ensure_rng(seed)  # the sanctioned RNG path
    return rng.uniform(size=n)


def from_snapshot(payload):
    try:
        total = payload["total"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed snapshot: {exc}") from exc
    if total < 0:
        raise ValidationError("total must be non-negative")
    restored = Accumulator()
    restored.total = total  # locally owned: exempt from L001
    return restored
