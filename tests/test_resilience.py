"""Chaos, durability, supervision, and admission-control tests.

The resilience contract (PR 9): injected faults never change results.
Covers the seeded :class:`~repro.service.faults.FaultPlan`, the
durability layer (atomic snapshot writes, integrity digests, generation
rotation, newest-valid recovery), the degradation primitives
(:class:`CircuitBreaker`, :class:`AdmissionController`,
:class:`RestartBudget`), the HTTP overload surface (429/503 +
``Retry-After`` honored by the CLI client), and process-level
supervision (SIGKILL a worker, watch it restart and resume its slot).
The load-bearing assertions are bit-identity: estimates after a chaos
run equal a fault-free single-process reference exactly.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import Partition, UniformRandomizer
from repro.exceptions import (
    ClusterError,
    SerializationError,
    SnapshotError,
    ValidationError,
)
from repro.serialize import load as load_snapshot
from repro.service import (
    AdmissionController,
    AggregationService,
    AttributeSpec,
    CircuitBreaker,
    ClusterCoordinator,
    FaultPlan,
    PartialShipper,
    RestartBudget,
    ServiceHTTPServer,
)
from repro.service.cluster import start_cluster
from repro.service.faults import PLAN_ENV_VAR
from repro.service.resilience import (
    SnapshotManager,
    persist_with_rotation,
    previous_snapshot_path,
    recover_service,
)
from repro.cli import _KeepAliveClient


def make_noise():
    return UniformRandomizer(half_width=0.25)


def make_service(*, n_shards=2):
    return AggregationService(
        [AttributeSpec("x", Partition.uniform(0, 1, 6), make_noise())],
        n_shards=n_shards,
    )


def make_batch(seed, n=200):
    rng = np.random.default_rng(seed)
    return {"x": make_noise().randomize(rng.uniform(0.2, 0.8, n), seed=rng)}


def assert_same_estimate(left, right):
    a = left.estimate("x", warn=False)
    b = right.estimate("x", warn=False)
    assert a.n_iterations == b.n_iterations
    assert np.array_equal(a.distribution.probs, b.distribution.probs)


# ----------------------------------------------------------------------
# FaultPlan: determinism, caps, validation, env activation
# ----------------------------------------------------------------------
class TestFaultPlan:
    SPEC = {
        "seed": 11,
        "points": {
            "demo": {"drop": 0.25, "error": 0.25, "delay": 0.25},
        },
    }

    def sequence(self, plan, point="demo", n=40):
        return [
            action.kind if action is not None else None
            for action in (plan.decide(point) for _ in range(n))
        ]

    def test_identical_across_instances_and_runs(self):
        first = self.sequence(FaultPlan(self.SPEC))
        second = self.sequence(FaultPlan(self.SPEC))
        assert first == second
        assert set(first) > {None}  # the schedule actually fires

    def test_seed_changes_schedule(self):
        other = dict(self.SPEC, seed=12)
        assert self.sequence(FaultPlan(self.SPEC)) != self.sequence(
            FaultPlan(other)
        )

    def test_max_caps_fires_not_attempts(self):
        plan = FaultPlan(
            {"seed": 1, "points": {"p": {"drop": 1.0, "max": 3}}}
        )
        kinds = self.sequence(plan, "p", 10)
        assert kinds[:3] == ["drop", "drop", "drop"]
        assert kinds[3:] == [None] * 7
        assert plan.stats() == {"p": {"attempts": 10, "fired": 3}}

    def test_qualified_key_beats_bare_point(self):
        plan = FaultPlan(
            {
                "seed": 2,
                "points": {
                    "httpd.response": {"drop": 1.0, "max": 1},
                    "httpd.response:/ingest": {"error": 1.0, "max": 1},
                },
            }
        )
        hit = plan.decide("httpd.response", qualifier="/ingest")
        assert hit.kind == "error"
        assert hit.point == "httpd.response:/ingest"
        other = plan.decide("httpd.response", qualifier="/stats")
        assert other.kind == "drop" and other.point == "httpd.response"

    def test_unnamed_point_is_free(self):
        plan = FaultPlan(self.SPEC)
        assert plan.decide("never.named") is None
        assert "never.named" not in plan.stats()

    def test_action_parameters_carried(self):
        plan = FaultPlan(
            {
                "seed": 3,
                "points": {
                    "p": {
                        "delay": 1.0,
                        "delay_seconds": 0.75,
                        "status": 429,
                        "max": 1,
                    },
                    "q": {"truncate": 1.0, "fraction": 0.25, "max": 1},
                },
            }
        )
        action = plan.decide("p")
        assert (action.kind, action.value, action.status) == (
            "delay", 0.75, 429,
        )
        assert plan.decide("q").value == 0.25

    @pytest.mark.parametrize(
        "spec, match",
        [
            ({"seed": 1, "bogus": {}}, "unknown keys"),
            ({"points": {"p": {"warp": 1.0}}}, "unknown entry"),
            ({"points": {"p": {"drop": 1.5}}}, "in \\[0, 1\\]"),
            ({"points": {"p": {"drop": 0.7, "error": 0.7}}}, "sum past"),
            ({"points": {"p": {"max": -1}}}, "max must be"),
            ({"points": {"p": {"truncate": 1.0, "fraction": 2.0}}},
             "fraction"),
        ],
    )
    def test_bad_specs_rejected(self, spec, match):
        with pytest.raises(ValidationError, match=match):
            FaultPlan(spec)

    def test_from_spec_empty_is_none(self):
        assert FaultPlan.from_spec(None) is None
        assert FaultPlan.from_spec({}) is None

    def test_from_env_inline_file_and_errors(self, tmp_path):
        assert FaultPlan.from_env({}) is None
        inline = FaultPlan.from_env(
            {PLAN_ENV_VAR: json.dumps(self.SPEC)}
        )
        assert inline.seed == 11
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(self.SPEC))
        from_file = FaultPlan.from_env({PLAN_ENV_VAR: f"@{plan_file}"})
        assert from_file.to_spec() == inline.to_spec()
        with pytest.raises(ValidationError, match="not valid JSON"):
            FaultPlan.from_env({PLAN_ENV_VAR: "{broken"})
        with pytest.raises(ValidationError, match="cannot read"):
            FaultPlan.from_env({PLAN_ENV_VAR: f"@{tmp_path}/absent.json"})

    def test_to_spec_round_trips_and_is_isolated(self):
        plan = FaultPlan(self.SPEC)
        spec = plan.to_spec()
        assert self.sequence(FaultPlan(spec)) == self.sequence(
            FaultPlan(self.SPEC)
        )
        spec["points"]["demo"]["drop"] = 1.0  # caller mutation is harmless
        assert plan.to_spec() == self.SPEC


# ----------------------------------------------------------------------
# Degradation primitives (fake clocks, no sleeping)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_at_threshold_then_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=5.0, clock=clock
        )
        assert breaker.allow() and breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.now = 5.0  # cooled off: exactly one probe goes through
        assert breaker.allow() and breaker.state == "half-open"
        assert not breaker.allow()  # the probe is still in flight
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_for_full_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        clock.now = 10.0  # 4s after reopen: still cooling
        assert not breaker.allow()
        clock.now = 11.0
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_timeout=-1.0)


class TestAdmissionController:
    def test_bounds_inflight_and_counts(self):
        gauge = AdmissionController(max_inflight=2, retry_after=3.0)
        assert gauge.try_acquire() and gauge.try_acquire()
        assert not gauge.try_acquire()
        gauge.release()
        assert gauge.try_acquire()
        stats = gauge.stats()
        assert stats["admitted"] == 3 and stats["rejected"] == 1
        assert stats["inflight"] == 2 and stats["max_inflight"] == 2

    def test_release_without_acquire_raises(self):
        gauge = AdmissionController(max_inflight=1)
        with pytest.raises(ValidationError, match="matching acquire"):
            gauge.release()

    def test_validation(self):
        with pytest.raises(ValidationError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValidationError):
            AdmissionController(max_inflight=1, retry_after=-1.0)


class TestRestartBudget:
    def test_backoff_doubles_then_exhausts(self):
        budget = RestartBudget(
            max_restarts=3, window=60.0, backoff=0.5, clock=FakeClock()
        )
        assert [budget.spend() for _ in range(4)] == [0.5, 1.0, 2.0, None]
        assert budget.spent == 3

    def test_window_expiry_refunds_budget(self):
        clock = FakeClock()
        budget = RestartBudget(
            max_restarts=1, window=10.0, backoff=0.5, clock=clock
        )
        assert budget.spend() == 0.5
        assert budget.spend() is None
        clock.now = 10.0  # the first restart fell out of the window
        assert budget.spend() == 0.5

    def test_backoff_caps(self):
        budget = RestartBudget(
            max_restarts=10, window=60.0, backoff=1.0, max_backoff=4.0,
            clock=FakeClock(),
        )
        assert [budget.spend() for _ in range(4)] == [1.0, 2.0, 4.0, 4.0]


# ----------------------------------------------------------------------
# Durability: atomic writes, integrity, rotation, recovery
# ----------------------------------------------------------------------
class TestDurability:
    def test_snapshot_integrity_digest_round_trip(self, tmp_path):
        service = make_service()
        service.ingest(make_batch(40))
        path = tmp_path / "snap.json"
        service.save(path)
        payload = json.loads(path.read_text())
        assert "integrity" in payload
        restored = AggregationService.load(path)
        assert_same_estimate(service, restored)

    def test_tampered_snapshot_rejected(self, tmp_path):
        service = make_service()
        service.ingest(make_batch(41))
        path = tmp_path / "snap.json"
        service.save(path)
        payload = json.loads(path.read_text())
        payload["n_shards"] = 7  # flip a byte of state, keep old digest
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="integrity digest"):
            load_snapshot(path)

    def test_rotation_keeps_previous_generation(self, tmp_path):
        service = make_service()
        path = tmp_path / "snap.json"
        service.ingest(make_batch(42))
        persist_with_rotation(service, path)
        first_generation = service.estimate("x", warn=False)
        service.ingest(make_batch(43))
        persist_with_rotation(service, path)
        assert previous_snapshot_path(path).is_file()
        newest, used = recover_service(path)
        assert used == path
        assert_same_estimate(service, newest)
        older = AggregationService.load(previous_snapshot_path(path))
        assert np.array_equal(
            older.estimate("x", warn=False).distribution.probs,
            first_generation.distribution.probs,
        )

    def test_failed_write_leaves_old_snapshot_intact(self, tmp_path):
        """Regression: a disk-full write must not truncate the snapshot."""
        service = make_service()
        service.ingest(make_batch(44))
        path = tmp_path / "snap.json"
        persist_with_rotation(service, path)
        good = path.read_bytes()

        class DiskFull:
            def save(self, target):
                raise OSError(28, "No space left on device")

        with pytest.raises(SnapshotError, match="No space left"):
            persist_with_rotation(DiskFull(), path)
        # the good generation is back under its original name, unharmed
        assert path.read_bytes() == good
        recovered, used = recover_service(path)
        assert used == path
        assert_same_estimate(service, recovered)

    def test_recovery_falls_back_past_corrupt_newest(self, tmp_path):
        service = make_service()
        service.ingest(make_batch(45))
        path = tmp_path / "snap.json"
        persist_with_rotation(service, path)
        service.ingest(make_batch(46))
        persist_with_rotation(service, path)
        path.write_text(path.read_text()[: 100])  # torn write
        recovered, used = recover_service(path)
        assert used == previous_snapshot_path(path)
        assert sum(recovered.n_seen().values()) == 200

    def test_missing_parent_directory_is_created(self, tmp_path):
        """Regression: a fresh ``--snapshot-dir`` must not fail every
        auto-snapshot until an operator pre-creates the directory."""
        service = make_service()
        service.ingest(make_batch(48))
        path = tmp_path / "snaps" / "worker-0.json"
        assert not path.parent.exists()
        persist_with_rotation(service, path)
        recovered, used = recover_service(path)
        assert used == path
        assert_same_estimate(service, recovered)

    def test_recovery_with_no_valid_generation_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        with pytest.raises(SnapshotError, match="no snapshot file exists"):
            recover_service(path)
        path.write_text("{broken")
        with pytest.raises(SnapshotError, match="no valid snapshot"):
            recover_service(path)

    def test_injected_snapshot_fault_spares_old_generation(self, tmp_path):
        service, server, thread = make_server(tmp_path)
        service.ingest(make_batch(47))
        try:
            server.persist()
            good = (tmp_path / "snap.json").read_bytes()
            server.faults = FaultPlan(
                {"seed": 5,
                 "points": {"snapshot.write": {"fail": 1.0, "max": 1}}}
            )
            with pytest.raises(SnapshotError, match="injected fault"):
                server.persist()
            assert (tmp_path / "snap.json").read_bytes() == good
            server.persist()  # the cap expired: next persist succeeds
        finally:
            server.shutdown()
            thread.join(timeout=5)


class TestSnapshotManager:
    def test_periodic_ticks_and_final_persist(self, tmp_path):
        service = make_service()
        service.ingest(make_batch(48))
        path = tmp_path / "snap.json"
        manager = SnapshotManager(
            lambda: persist_with_rotation(service, path), interval=0.05
        ).start()
        deadline = time.monotonic() + 10.0
        while manager.stats()["snapshots"] < 2:
            assert time.monotonic() < deadline, "auto-snapshot never ticked"
            time.sleep(0.02)
        assert manager.stop(final=True) is True
        assert_same_estimate(service, recover_service(path)[0])

    def test_failed_tick_counted_not_fatal(self):
        calls = []

        def persist():
            calls.append(True)
            raise SnapshotError("injected")

        manager = SnapshotManager(persist, interval=3600.0)
        assert manager.stop(final=True) is False  # final persist failed
        assert manager.stats()["failures"] == 1 and len(calls) == 1

    def test_interval_validated_and_single_start(self):
        with pytest.raises(ValidationError, match="interval"):
            SnapshotManager(lambda: None, interval=0.0)
        manager = SnapshotManager(lambda: None, interval=5.0).start()
        with pytest.raises(ValidationError, match="already started"):
            manager.start()
        manager.stop(final=False)


# ----------------------------------------------------------------------
# HTTP chaos: injected faults never change what the service absorbed
# ----------------------------------------------------------------------
def make_server(tmp_path, **kwargs):
    service = make_service()
    server = ServiceHTTPServer(
        service, port=0, snapshot_path=tmp_path / "snap.json", **kwargs
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return service, server, thread


class TestHTTPChaos:
    def test_injected_503_carries_retry_after_absorbs_nothing(self, tmp_path):
        faults = {
            "seed": 6,
            "points": {"httpd.response:/ingest": {"error": 1.0, "max": 1}},
        }
        service, server, thread = make_server(tmp_path, faults=faults)
        try:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            body = json.dumps(
                {"batch": {"x": make_batch(50)["x"].tolist()}}
            ).encode()
            conn.request("POST", "/ingest", body=body)
            response = conn.getresponse()
            detail = json.loads(response.read())
            assert response.status == 503
            assert response.getheader("Retry-After") == "1"
            assert "injected fault" in detail["error"]
            assert service.n_seen("x") == 0  # nothing absorbed
            conn.request("POST", "/ingest", body=body)  # identical re-send
            assert json.loads(conn.getresponse().read())["ingested"] == 200
            assert service.n_seen("x") == 200
            conn.close()
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_dropped_response_redialed_by_client(self, tmp_path):
        faults = {
            "seed": 7,
            "points": {"httpd.response:/healthz": {"drop": 1.0, "max": 1}},
        }
        _, server, thread = make_server(tmp_path, faults=faults)
        try:
            client = _KeepAliveClient(server.url)
            # first GET is dropped mid-air; the client redials and
            # re-sends (GETs are idempotent) without surfacing an error
            assert client.get("/healthz")["status"] == "ok"
            client.close()
            assert server.faults.stats()[
                "httpd.response:/healthz"
            ]["fired"] == 1
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_chaos_ingest_parity_bit_identical(self, tmp_path, monkeypatch):
        """The tentpole invariant: a 5xx storm changes nothing."""
        monkeypatch.setattr(time, "sleep", lambda seconds: None)
        faults = {
            "seed": 8,
            "points": {"httpd.response:/ingest": {"error": 0.4}},
        }
        service, server, thread = make_server(tmp_path, faults=faults)
        reference = make_service()
        try:
            client = _KeepAliveClient(server.url)
            for seed in range(60, 70):
                batch = make_batch(seed)
                reference.ingest(batch)
                body = json.dumps(
                    {"batch": {"x": batch["x"].tolist()}}
                ).encode()
                assert client.post("/ingest", body)["ingested"] == 200
            client.close()
            fired = server.faults.stats()["httpd.response:/ingest"]["fired"]
            assert fired > 0, "the storm never fired; rate/seed broken"
            assert service.n_seen("x") == 2000
            assert_same_estimate(service, reference)
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_delay_fault_slows_but_absorbs(self, tmp_path):
        faults = {
            "seed": 9,
            "points": {
                "httpd.response:/ingest": {
                    "delay": 1.0, "delay_seconds": 0.05, "max": 1,
                }
            },
        }
        service, server, thread = make_server(tmp_path, faults=faults)
        try:
            client = _KeepAliveClient(server.url)
            body = json.dumps(
                {"batch": {"x": make_batch(51)["x"].tolist()}}
            ).encode()
            started = time.monotonic()
            assert client.post("/ingest", body)["ingested"] == 200
            assert time.monotonic() - started >= 0.05
            assert service.n_seen("x") == 200
            client.close()
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_env_var_activates_plan(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            PLAN_ENV_VAR,
            json.dumps(
                {"seed": 10,
                 "points": {"httpd.response:/stats": {"error": 1.0,
                                                      "max": 1}}}
            ),
        )
        _, server, thread = make_server(tmp_path)  # faults=None -> env
        try:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", "/stats")
            response = conn.getresponse()
            response.read()
            assert response.status == 503
            conn.request("GET", "/stats")
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            conn.close()
        finally:
            server.shutdown()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Shipper chaos: truncation/drops retry; the breaker stops the hammering
# ----------------------------------------------------------------------
class InProcessCoordinator:
    """Coordinator behind a fetch that emulates the HTTP /partial path."""

    def __init__(self):
        self.coordinator = ClusterCoordinator(
            make_service(n_shards=1), n_workers=1
        )
        self.coordinator.register(0, "http://w0")
        self.attempts = 0

    def fetch(self, url, data=None, content_type=None, timeout=None):
        self.attempts += 1
        worker = int(url.rsplit("worker=", 1)[1])
        try:
            self.coordinator.apply_push(worker, data)
        except Exception as exc:
            # the HTTP server maps a malformed frame to 400, which the
            # shipper's fetch surfaces as ClusterError
            raise ClusterError(f"push rejected: {exc}") from exc
        return b"{}"


class TestShipperChaos:
    def test_truncated_frame_rejected_then_retried_whole(self):
        upstream = InProcessCoordinator()
        worker = make_service()
        worker.ingest(make_batch(52))
        faults = FaultPlan(
            {"seed": 12,
             "points": {"shipper.push": {"truncate": 1.0, "max": 2,
                                         "fraction": 0.5}}}
        )
        shipper = PartialShipper(
            worker, "http://c", 0, fetch=upstream.fetch,
            sleep=lambda seconds: None, faults=faults,
        )
        assert shipper.push() is True
        assert upstream.attempts == 3  # two cut frames bounced, third whole
        assert upstream.coordinator.service.n_seen("x") == 200
        assert_same_estimate(upstream.coordinator.service, worker)

    def test_dropped_pushes_retry_to_parity(self):
        upstream = InProcessCoordinator()
        worker = make_service()
        worker.ingest(make_batch(53))
        faults = FaultPlan(
            {"seed": 13, "points": {"shipper.push": {"drop": 1.0, "max": 3}}}
        )
        shipper = PartialShipper(
            worker, "http://c", 0, fetch=upstream.fetch,
            sleep=lambda seconds: None, faults=faults,
        )
        assert shipper.push() is True
        assert upstream.attempts == 1  # drops never touched the wire
        assert_same_estimate(upstream.coordinator.service, worker)

    def test_breaker_opens_after_failed_pushes_and_drain_forces(self):
        def dead_fetch(url, data=None, content_type=None, timeout=None):
            raise ClusterError("coordinator down")

        worker = make_service()
        worker.ingest(make_batch(54))
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=3600.0, clock=FakeClock()
        )
        shipper = PartialShipper(
            worker, "http://c", 0, retries=1, fetch=dead_fetch,
            sleep=lambda seconds: None, breaker=breaker,
        )
        assert shipper.push() is False and shipper.push() is False
        assert breaker.state == "open"
        assert shipper.push() is False  # skipped outright, not attempted
        assert shipper.skipped == 1
        # the drain flush must still try (and fail loudly, not silently)
        assert shipper.stop(drain=True) is False
        assert shipper.failures == 3

    def test_failed_drain_is_logged_loudly(self, caplog):
        def dead_fetch(url, data=None, content_type=None, timeout=None):
            raise ClusterError("coordinator down")

        shipper = PartialShipper(
            make_service(), "http://c", 0, retries=1, fetch=dead_fetch,
            sleep=lambda seconds: None,
        )
        with caplog.at_level("WARNING", logger="repro.service.cluster"):
            assert shipper.stop(drain=True) is False
        assert any(
            "final drain push failed" in record.message
            for record in caplog.records
        )


# ----------------------------------------------------------------------
# Admission control over HTTP: 429/503 + Retry-After, honored client-side
# ----------------------------------------------------------------------
class TestAdmissionHTTP:
    def test_overload_returns_429_with_retry_after(self, tmp_path):
        service, server, thread = make_server(
            tmp_path, max_inflight=1, retry_after=2.0
        )
        try:
            assert server.admission.try_acquire()  # hog the only slot
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            body = json.dumps(
                {"batch": {"x": make_batch(55)["x"].tolist()}}
            ).encode()
            conn.request("POST", "/ingest", body=body)
            response = conn.getresponse()
            detail = json.loads(response.read())
            assert response.status == 429
            assert response.getheader("Retry-After") == "2"
            assert "in-flight ingest" in detail["error"]
            assert service.n_seen("x") == 0
            server.admission.release()
            conn.request("POST", "/ingest", body=body)
            assert conn.getresponse().status == 200
            assert service.n_seen("x") == 200
            conn.close()
            stats = server.admission.stats()
            assert stats["rejected"] == 1 and stats["inflight"] == 0
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_client_waits_out_overload_without_dropping(
        self, tmp_path, monkeypatch
    ):
        service, server, thread = make_server(
            tmp_path, max_inflight=1, retry_after=1.0
        )
        try:
            assert server.admission.try_acquire()
            waits = []

            def sleep_then_free(seconds):
                waits.append(seconds)
                if server.admission.inflight:
                    server.admission.release()

            monkeypatch.setattr(time, "sleep", sleep_then_free)
            client = _KeepAliveClient(server.url)
            body = json.dumps(
                {"batch": {"x": make_batch(56)["x"].tolist()}}
            ).encode()
            assert client.post("/ingest", body)["ingested"] == 200
            client.close()
            assert waits == [1.0]  # one honored Retry-After, no drops
            assert service.n_seen("x") == 200
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_draining_returns_503_and_healthz_reports(self, tmp_path):
        service, server, thread = make_server(tmp_path)
        try:
            server.begin_drain()
            with urllib.request.urlopen(server.url + "/healthz") as response:
                assert json.loads(response.read())["status"] == "draining"
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request(
                "POST", "/ingest",
                body=json.dumps(
                    {"batch": {"x": make_batch(57)["x"].tolist()}}
                ).encode(),
            )
            response = conn.getresponse()
            assert response.status == 503
            assert response.getheader("Retry-After") is not None
            assert "drain" in json.loads(response.read())["error"]
            assert service.n_seen("x") == 0
            conn.close()
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_stats_exposes_admission_and_fault_counters(self, tmp_path):
        _, server, thread = make_server(
            tmp_path, max_inflight=4,
            faults={"seed": 1, "points": {"demo": {"drop": 1.0}}},
        )
        try:
            with urllib.request.urlopen(server.url + "/stats") as response:
                payload = json.loads(response.read())
            assert payload["admission"]["max_inflight"] == 4
            assert payload["faults"] == {"demo": {"attempts": 0, "fired": 0}}
        finally:
            server.shutdown()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Process-level supervision: SIGKILL workers, restart, resume the slot
# ----------------------------------------------------------------------
SPEC = {
    "shards": 2,
    "classes": 0,
    "intervals": 8,
    "attributes": [
        {"name": "age", "low": 20, "high": 80,
         "noise": "uniform", "privacy": 1.0},
    ],
}


def cluster_noise():
    from repro.core import noise_for_privacy

    return noise_for_privacy("uniform", 1.0, 60.0)


def cluster_reference():
    return AggregationService(
        [AttributeSpec("age", Partition.uniform(20, 80, 8), cluster_noise())]
    )


def age_batch(seed, n=300):
    rng = np.random.default_rng(seed)
    return {"age": cluster_noise().randomize(rng.uniform(30, 70, n), seed=seed)}


def http_get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def http_post_json(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def ingest_age(url, batch):
    return http_post_json(
        url + "/ingest", {"batch": {"age": batch["age"].tolist()}}
    )


def poll_until(predicate, timeout=60.0, message="condition never held"):
    deadline = time.monotonic() + timeout
    while True:
        if predicate():
            return
        assert time.monotonic() < deadline, message
        time.sleep(0.05)


def snapshot_holds(path, n_records):
    def check():
        try:
            recovered, _ = recover_service(path)
        except SnapshotError:
            return False
        return sum(recovered.n_seen().values()) >= n_records

    return check


def coordinator_records(url):
    """Union record count via pushes only — no /estimate warm-start.

    Estimates warm-start from the previous refresh, so bit-parity with
    the single-process reference needs both sides refreshed at the same
    points: poll /healthz (records advance via shipper pushes), then
    run exactly one /estimate against exactly one reference estimate.
    """
    return http_get(url + "/healthz")[1]["records"]


def assert_age_estimate_matches(coordinator_url, reference, n_seen):
    status, estimate = http_get(coordinator_url + "/estimate?attribute=age")
    expected = reference.estimate("age", warn=False)
    assert status == 200
    assert estimate["n_seen"] == n_seen
    assert estimate["n_iterations"] == expected.n_iterations
    assert np.array_equal(
        np.asarray(estimate["probs"]), expected.distribution.probs
    )


class TestSupervision:
    def test_sigkill_mid_ingest_restart_resumes_slot(self, tmp_path):
        """The crash-recovery integration test.

        Worker 0 is SIGKILLed while ingest traffic is in flight; the
        supervisor restarts it, the restarted process recovers its
        cumulative state from its auto-snapshot and resumes its shard
        slot, and the final estimate is bit-identical to a
        single-process reference fed every acknowledged batch.
        """
        supervisor = start_cluster(
            SPEC, n_workers=2, sync_interval=0.2,
            snapshot_dir=tmp_path, snapshot_interval=0.05,
            restart_backoff=0.05,
        )
        reference = cluster_reference()
        try:
            supervisor.wait_ready(timeout=60.0)
            urls = supervisor.worker_urls()

            batch = age_batch(70)
            assert ingest_age(urls[0], batch)[0] == 200
            reference.ingest(batch)
            batch = age_batch(71)
            assert ingest_age(urls[1], batch)[0] == 200
            reference.ingest(batch)
            # wait until worker 0's auto-snapshot holds its batch, so
            # the SIGKILL cannot lose acknowledged records
            poll_until(
                snapshot_holds(tmp_path / "worker-0.json", 300),
                message="worker 0 never auto-snapshotted its batch",
            )

            victim = supervisor.processes[0]
            os.kill(victim.pid, signal.SIGKILL)

            # mid-ingest: traffic keeps arriving while the slot is down;
            # the send fails (connection refused) and is retried against
            # the restarted worker until acknowledged
            batch = age_batch(72)
            reference.ingest(batch)

            def restarted():
                return supervisor.supervision()["restarts"][0] >= 1

            poll_until(restarted, message="worker 0 was never restarted")

            def resend():
                entry = supervisor.coordinator.health()["workers"][0]
                try:
                    return ingest_age(entry["url"], batch)[0] == 200
                except (urllib.error.URLError, ConnectionError, OSError):
                    return False

            poll_until(resend, message="restarted worker never ingested")

            # the union: worker 0's recovered snapshot + its re-sent
            # batch + worker 1's batch, all landed by interval pushes
            poll_until(
                lambda: coordinator_records(supervisor.url) == 900,
                message="union never reached 900 records",
            )
            assert_age_estimate_matches(supervisor.url, reference, 900)

            health = supervisor.coordinator.health()
            assert health["supervision"]["restarts"][0] >= 1
        finally:
            result = supervisor.shutdown()
        assert result["ok"], result["failures"]
        assert result["restarts"][0] >= 1

    def test_fault_plan_sigkills_worker_deterministically(self, tmp_path):
        faults = {
            "seed": 21,
            "points": {"supervisor.kill:0": {"kill": 1.0, "max": 1}},
        }
        supervisor = start_cluster(
            SPEC, n_workers=2, sync_interval=0.2,
            snapshot_dir=tmp_path, snapshot_interval=0.05,
            restart_backoff=0.05, faults=faults,
        )
        reference = cluster_reference()
        try:
            supervisor.wait_ready(timeout=60.0)
            batch = age_batch(73)
            assert ingest_age(supervisor.worker_urls()[1], batch)[0] == 200
            reference.ingest(batch)

            poll_until(
                lambda: supervisor.supervision()["restarts"][0] >= 1,
                message="the fault plan never killed worker 0",
            )
            poll_until(
                lambda: supervisor.coordinator.health()["registered"] >= 2,
                message="restarted worker never re-registered",
            )
            poll_until(
                lambda: coordinator_records(supervisor.url) == 300,
                message="the union never reflected worker 1's batch",
            )
            assert_age_estimate_matches(supervisor.url, reference, 300)
        finally:
            result = supervisor.shutdown()
        assert result["ok"], result["failures"]

    def test_exhausted_restart_budget_degrades_loudly(self):
        supervisor = start_cluster(
            SPEC, n_workers=1, sync_interval=60.0, restart_limit=0,
        )
        try:
            supervisor.wait_ready(timeout=60.0)
            os.kill(supervisor.processes[0].pid, signal.SIGKILL)
            poll_until(
                lambda: supervisor.supervision()["exhausted"] == [0],
                message="budget exhaustion was never recorded",
            )
            status, health = http_get(supervisor.url + "/healthz")
            assert health["status"] == "degraded"
            assert health["cluster"]["supervision"]["exhausted"] == [0]
        finally:
            result = supervisor.shutdown()
        assert not result["ok"]
        assert any(
            "restart budget exhausted" in failure["reason"]
            for failure in result["failures"]
        )

    def test_coordinator_recovers_from_newest_valid_auto_snapshot(
        self, tmp_path
    ):
        """Coordinator crash-safety: its auto-snapshot restores the union."""
        coordinator_snapshot = tmp_path / "coordinator.json"
        supervisor = start_cluster(
            SPEC, n_workers=2, sync_interval=0.1,
            snapshot_path=coordinator_snapshot, snapshot_interval=0.05,
        )
        reference = cluster_reference()
        try:
            supervisor.wait_ready(timeout=60.0)
            urls = supervisor.worker_urls()
            for worker, seed in enumerate((74, 75)):
                batch = age_batch(seed)
                assert ingest_age(urls[worker], batch)[0] == 200
                reference.ingest(batch)
            # shipper pushes land, then the coordinator auto-snapshot
            # captures the union; a crash any time after this point
            # (SIGKILL leaves no drain) can recover the 600 records
            poll_until(
                snapshot_holds(coordinator_snapshot, 600),
                message="coordinator auto-snapshot never held the union",
            )
        finally:
            result = supervisor.shutdown()
        assert result["ok"], result["failures"]

        # "restart" the coordinator: recovery loads the newest valid
        # generation and the estimate matches the single-process
        # reference bit-for-bit
        recovered, used = recover_service(coordinator_snapshot)
        assert sum(recovered.n_seen().values()) == 600
        a = recovered.estimate("age", warn=False)
        b = reference.estimate("age", warn=False)
        assert a.n_iterations == b.n_iterations
        assert np.array_equal(a.distribution.probs, b.distribution.probs)

        # a torn newest generation falls back to the previous one
        if previous_snapshot_path(coordinator_snapshot).is_file():
            coordinator_snapshot.write_text(
                coordinator_snapshot.read_text()[:80]
            )
            _, used = recover_service(coordinator_snapshot)
            assert used == previous_snapshot_path(coordinator_snapshot)


class TestServeClusterCLI:
    def test_unclean_shutdown_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.service.cluster as cluster_module
        from repro.cli import main

        class FakeSupervisor:
            url = "http://127.0.0.1:0"
            processes = []

            def wait_ready(self, timeout=30.0):
                return self

            def worker_urls(self):
                return []

            def wait(self):
                return None

            def shutdown(self, timeout=30.0):
                return {
                    "ok": False,
                    "failures": [
                        {"worker": 0, "reason": "final drain failed"}
                    ],
                    "restarts": [0],
                    "exhausted": [],
                }

        monkeypatch.setattr(
            cluster_module, "start_cluster",
            lambda *args, **kwargs: FakeSupervisor(),
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC))
        code = main(
            ["serve", "--workers", "1", "--spec", str(spec_path)]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "cluster shutdown was not clean" in err
        assert "final drain failed" in err

    def test_sigterm_takes_the_graceful_shutdown_path(self):
        """Regression: ``kill <pid>`` must drain like Ctrl-C, not
        orphan the workers by skipping every ``finally`` block."""
        from repro.cli import _graceful_sigterm

        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with _graceful_sigterm():
                assert signal.getsignal(signal.SIGTERM) is not before
                os.kill(os.getpid(), signal.SIGTERM)
                signal.sigtimedwait([], 5)  # delivery is asynchronous
                raise AssertionError("SIGTERM was not delivered")
        assert signal.getsignal(signal.SIGTERM) is before

    def test_graceful_sigterm_is_a_no_op_off_the_main_thread(self):
        from repro.cli import _graceful_sigterm

        failures = []

        def body():
            try:
                with _graceful_sigterm():
                    pass
            except BaseException as exc:  # pragma: no cover - fail loud
                failures.append(exc)

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=5)
        assert not failures
