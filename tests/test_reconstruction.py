"""Tests for the Bayesian reconstruction algorithm (paper §3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.randomizers import GaussianRandomizer, UniformRandomizer
from repro.core.reconstruction import BayesReconstructor
from repro.datasets import shapes
from repro.exceptions import ConvergenceWarning, ValidationError


@pytest.fixture
def plateau_sample(rng):
    density = shapes.plateau()
    x = density.sample(6_000, seed=rng)
    part = density.partition(20)
    return density, x, part


class TestConfiguration:
    def test_rejects_bad_max_iterations(self):
        with pytest.raises(ValidationError):
            BayesReconstructor(max_iterations=0)

    def test_rejects_bad_tol(self):
        with pytest.raises(ValidationError):
            BayesReconstructor(tol=0.0)

    def test_rejects_bad_stopping(self):
        with pytest.raises(ValidationError):
            BayesReconstructor(stopping="never")

    @pytest.mark.parametrize("coverage", [0.0, -0.1, 1.5, 2.0])
    def test_rejects_bad_coverage(self, coverage):
        with pytest.raises(ValidationError):
            BayesReconstructor(coverage=coverage)

    def test_rejects_bad_transition(self):
        with pytest.raises(ValidationError):
            BayesReconstructor(transition_method="midpoint")


class TestRecoveryQuality:
    def test_beats_randomized_histogram_uniform(self, plateau_sample):
        density, x, part = plateau_sample
        noise = UniformRandomizer.from_privacy(0.5, 1.0)
        w = noise.randomize(x, seed=1)
        original = HistogramDistribution.from_values(x, part)
        randomized = HistogramDistribution.from_values(w, part)
        result = BayesReconstructor().reconstruct(w, part, noise)
        assert result.distribution.l1_distance(original) < 0.5 * randomized.l1_distance(
            original
        )

    def test_beats_randomized_histogram_gaussian(self, plateau_sample):
        density, x, part = plateau_sample
        noise = GaussianRandomizer.from_privacy(0.5, 1.0)
        w = noise.randomize(x, seed=2)
        original = HistogramDistribution.from_values(x, part)
        randomized = HistogramDistribution.from_values(w, part)
        result = BayesReconstructor().reconstruct(w, part, noise)
        assert result.distribution.l1_distance(original) < randomized.l1_distance(
            original
        )

    def test_light_noise_near_perfect(self, plateau_sample):
        density, x, part = plateau_sample
        noise = UniformRandomizer(half_width=0.01)
        w = noise.randomize(x, seed=3)
        original = HistogramDistribution.from_values(x, part)
        result = BayesReconstructor().reconstruct(w, part, noise)
        assert result.distribution.l1_distance(original) < 0.05

    def test_probs_form_simplex(self, plateau_sample):
        density, x, part = plateau_sample
        noise = UniformRandomizer.from_privacy(1.0, 1.0)
        w = noise.randomize(x, seed=4)
        result = BayesReconstructor().reconstruct(w, part, noise)
        probs = result.distribution.probs
        assert probs.min() >= 0.0
        assert probs.sum() == pytest.approx(1.0)

    def test_triangles_shape_recovered(self, rng):
        density = shapes.triangles()
        x = density.sample(8_000, seed=rng)
        part = density.partition(20)
        noise = UniformRandomizer.from_privacy(0.5, 1.0)
        w = noise.randomize(x, seed=5)
        result = BayesReconstructor().reconstruct(w, part, noise)
        true = density.true_distribution(part)
        assert result.distribution.l1_distance(true) < 0.25
        # twin peaks: mass in the two bump regions dominates the middle
        probs = result.distribution.probs
        middle = probs[9:11].sum()
        peaks = probs[3:6].sum() + probs[14:17].sum()
        assert peaks > 4 * middle


class TestStopping:
    @pytest.mark.filterwarnings("ignore::UserWarning")
    def test_chi2_stops_before_overfitting(self, plateau_sample):
        """Iterating past the chi2 stop degrades the estimate (paper's point)."""
        density, x, part = plateau_sample
        noise = UniformRandomizer.from_privacy(0.25, 1.0)
        w = noise.randomize(x, seed=6)
        original = HistogramDistribution.from_values(x, part)

        early = BayesReconstructor(stopping="chi2").reconstruct(w, part, noise)
        late = BayesReconstructor(
            stopping="delta", tol=1e-12, max_iterations=400
        ).reconstruct(w, part, noise)
        err_early = early.distribution.l1_distance(original)
        err_late = late.distribution.l1_distance(original)
        assert early.n_iterations < late.n_iterations
        assert err_early < err_late

    def test_delta_stopping_converges(self, plateau_sample):
        density, x, part = plateau_sample
        noise = UniformRandomizer.from_privacy(0.25, 1.0)
        w = noise.randomize(x, seed=7)
        result = BayesReconstructor(stopping="delta", tol=1e-3).reconstruct(
            w, part, noise
        )
        assert result.converged
        assert result.delta_history[-1] < 1e-3

    def test_max_iterations_warns(self, plateau_sample):
        density, x, part = plateau_sample
        noise = UniformRandomizer.from_privacy(1.0, 1.0)
        w = noise.randomize(x, seed=8)
        with pytest.warns(ConvergenceWarning):
            result = BayesReconstructor(
                stopping="delta", tol=1e-15, max_iterations=3
            ).reconstruct(w, part, noise)
        assert not result.converged
        assert result.n_iterations == 3

    def test_chi2_statistic_reported(self, plateau_sample):
        density, x, part = plateau_sample
        noise = UniformRandomizer.from_privacy(0.5, 1.0)
        w = noise.randomize(x, seed=9)
        result = BayesReconstructor().reconstruct(w, part, noise)
        assert np.isfinite(result.chi2_statistic)
        assert np.isfinite(result.chi2_threshold)


class TestEdgeCases:
    def test_identity_when_noise_tiny(self, unit_partition):
        x = np.repeat(unit_partition.midpoints, 50)
        noise = UniformRandomizer(half_width=1e-6)
        result = BayesReconstructor().reconstruct(x, unit_partition, noise)
        empirical = HistogramDistribution.from_values(x, unit_partition)
        assert result.distribution.l1_distance(empirical) < 1e-3

    def test_point_mass_input(self, unit_partition):
        noise = UniformRandomizer(half_width=0.05)
        x = np.full(500, 0.55)
        w = noise.randomize(x, seed=10)
        result = BayesReconstructor().reconstruct(w, unit_partition, noise)
        assert result.distribution.probs[5] > 0.6

    def test_single_value(self, unit_partition):
        noise = UniformRandomizer(half_width=0.1)
        result = BayesReconstructor().reconstruct(
            np.array([0.5]), unit_partition, noise
        )
        assert result.distribution.probs.sum() == pytest.approx(1.0)

    def test_rejects_empty_input(self, unit_partition):
        noise = UniformRandomizer(half_width=0.1)
        with pytest.raises(ValidationError):
            BayesReconstructor().reconstruct(np.array([]), unit_partition, noise)

    def test_density_transition_also_works(self, plateau_sample):
        density, x, part = plateau_sample
        noise = UniformRandomizer.from_privacy(0.5, 1.0)
        w = noise.randomize(x, seed=11)
        original = HistogramDistribution.from_values(x, part)
        result = BayesReconstructor(transition_method="density").reconstruct(
            w, part, noise
        )
        assert result.distribution.l1_distance(original) < 0.3


@given(
    seed=st.integers(0, 1000),
    privacy=st.sampled_from([0.25, 0.5, 1.0]),
    m=st.sampled_from([10, 20]),
)
def test_property_reconstruction_is_simplex(seed, privacy, m):
    rng = np.random.default_rng(seed)
    x = rng.beta(2, 5, size=400)
    part = Partition.uniform(0, 1, m)
    noise = UniformRandomizer.from_privacy(privacy, 1.0)
    w = noise.randomize(x, seed=rng)
    result = BayesReconstructor(max_iterations=50, tol=1e-2).reconstruct(
        w, part, noise
    )
    probs = result.distribution.probs
    assert probs.min() >= 0
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
    assert result.n_iterations <= 50
