"""Mergeable histogram partials for sharded disclosure ingestion.

The reconstruction algorithm never needs raw disclosures — only the
histogram of randomized values on the noise-expanded grid.  Histograms
are *mergeable*: the histogram of a union of batches is the elementwise
sum of the batches' histograms, exactly (counts are integers, and float64
addition of integers is exact far beyond any realistic record count).

That makes server-side aggregation embarrassingly shardable:

* each ingestion worker owns (or is routed to) a :class:`HistogramShard`
  and accumulates its batches in O(batch) work with no cross-worker
  coordination,
* a refresh merges the shard partials in O(shards x bins) — independent
  of how many records have ever been seen — and hands the merged counts
  to the reconstruction engine.

The hot path is built for memory bandwidth, not Python speed:

* every attribute's noise-expanded grid occupies one contiguous stripe
  of a single flat counts buffer (:class:`ColumnLayout`), so a batch
  touching any subset of attributes bins **all** of them in one fused
  ``np.bincount`` over offset indices (``offset + locate(values)``, the
  same flat-offset trick the tree's split search uses),
* :meth:`HistogramShard.ingest_prepared` accepts those pre-located
  indices (:class:`PreparedBatch`, built once per batch outside any
  lock), and
* each shard accumulates into **striped per-thread buffers**: a writer
  thread owns its stripe, so its stripe lock is uncontended on the hot
  path and reads (:meth:`HistogramShard.partial`) merge the stripes —
  exact, because integer-valued float64 sums are associative,
* layouts built with ``n_classes >= 1`` replicate the flat buffer into
  per-class *blocks* (plus one for unlabeled records), and a labeled
  batch's class column folds into the same fused ``np.bincount``, so
  class-conditional aggregation — the input the paper's ByClass/Local
  training needs — costs the ingest path nothing.

:class:`ShardSet` is the fixed-size collection of shards over one
attribute schema, with round-robin routing and the O(bins) merge.  The
control plane (engine, warm-started estimates, persistence) lives in
:class:`repro.service.AggregationService`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.partition import Partition
from repro.core.randomizers import AdditiveRandomizer
from repro.exceptions import ValidationError
from repro.utils.validation import check_1d_array, check_label_column

#: the column dtypes the quantized wire path ships bin indices in
_QUANTIZED_DTYPES = (np.dtype("<i1"), np.dtype("<i2"))


def _quantized_column(values):
    """Return ``values`` when it is a quantized column, else ``None``.

    Quantized columns — the wire v5 carriers — are int8/int16 ndarrays
    of *pre-located bin indices*; every other input (lists, float
    arrays, wider integer arrays) stays on the locate-by-value path.
    """
    if isinstance(values, np.ndarray) and values.dtype in _QUANTIZED_DTYPES:
        return values
    return None


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute the aggregation service collects disclosures for.

    Attributes
    ----------
    name:
        Unique attribute name; the routing key of every ingested batch.
    x_partition:
        Grid over the original domain on which estimates are expressed.
    randomizer:
        The (public) additive noise process providers disclose through.

    Examples
    --------
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service import AttributeSpec
    >>> spec = AttributeSpec("age", Partition.uniform(20, 80, 12),
    ...                      UniformRandomizer(half_width=15.0))
    >>> spec.name, spec.x_partition.n_intervals
    ('age', 12)
    """

    name: str
    x_partition: Partition
    randomizer: AdditiveRandomizer

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("attribute name must be a non-empty string")
        if not isinstance(self.x_partition, Partition):
            raise ValidationError(
                f"x_partition must be a Partition, got "
                f"{type(self.x_partition).__name__}"
            )
        if not isinstance(self.randomizer, AdditiveRandomizer):
            raise ValidationError(
                "randomizer must be an AdditiveRandomizer (the service "
                f"aggregates additive disclosures), got "
                f"{type(self.randomizer).__name__}"
            )


class ColumnLayout:
    """Flat-offset layout of a schema's noise-expanded grids.

    Attribute ``j``'s bins occupy ``[offsets[j], offsets[j] + m_j)`` of
    one flat counts vector of ``total_bins`` entries, so locating a
    value and adding the attribute's offset yields a *global* bin index
    — and one ``np.bincount`` over those fused indices bins every
    attribute of a batch in a single vectorized pass.

    With ``n_classes >= 1`` the flat vector holds ``n_classes + 1``
    consecutive *class blocks* of that base layout: block 0 collects
    unlabeled records (v1 wire clients), block ``c + 1`` collects
    records disclosed with class label ``c``.  A labeled batch's class
    column simply adds ``(class + 1) * base_bins`` to each fused index,
    so the same single ``np.bincount`` bins every attribute of a batch
    *per class* in one pass.

    Shared by every shard of a :class:`ShardSet` (the layout is
    immutable schema geometry, not state).

    Examples
    --------
    >>> from repro.core import Partition
    >>> from repro.service.shards import ColumnLayout
    >>> layout = ColumnLayout({"a": Partition.uniform(0, 1, 4),
    ...                        "b": Partition.uniform(0, 1, 6)})
    >>> layout.total_bins, layout.offset_of("b")
    (10, 4)
    >>> layout.prepare({"b": [0.05, 0.95]}).flat.tolist()
    [4, 9]
    >>> labeled = ColumnLayout({"a": Partition.uniform(0, 1, 4)}, n_classes=2)
    >>> labeled.total_bins  # 4 bins x (unlabeled + 2 class blocks)
    12
    >>> labeled.prepare({"a": [0.1, 0.9]}, classes=[0, 1]).flat.tolist()
    [4, 11]
    """

    __slots__ = (
        "_partitions", "_names", "_offsets", "_index",
        "base_bins", "n_classes", "total_bins",
    )

    def __init__(self, y_partitions, *, n_classes: int = 0) -> None:
        if not y_partitions:
            raise ValidationError("a layout needs at least one attribute")
        if not isinstance(n_classes, int) or n_classes < 0:
            raise ValidationError(
                f"n_classes must be a non-negative integer, got {n_classes!r}"
            )
        self._partitions = dict(y_partitions)
        self._names = tuple(self._partitions)
        self._index = {name: k for k, name in enumerate(self._names)}
        self._offsets = {}
        total = 0
        for name, partition in self._partitions.items():
            self._offsets[name] = total
            total += partition.n_intervals
        self.base_bins = total
        self.n_classes = int(n_classes)
        self.total_bins = total * (self.n_classes + 1)

    @property
    def names(self) -> tuple:
        """Attribute names, in schema order."""
        return self._names

    def partition(self, name: str) -> Partition:
        """The noise-expanded grid of attribute ``name``."""
        self.require(name)
        return self._partitions[name]

    def offset_of(self, name: str) -> int:
        """First flat bin of attribute ``name`` (within class block 0)."""
        self.require(name)
        return self._offsets[name]

    def index_of(self, name: str) -> int:
        """Schema position of attribute ``name`` (for per-attribute counters)."""
        self.require(name)
        return self._index[name]

    def slice_of(self, name: str, class_block: int = 0) -> slice:
        """``name``'s bin range within one class block of the flat vector.

        Block 0 is the unlabeled partition; block ``c + 1`` holds class
        ``c``.  Layouts without classes only have block 0, so existing
        callers keep their meaning.
        """
        self.require(name)
        if not 0 <= class_block <= self.n_classes:
            raise ValidationError(
                f"class block {class_block} out of range "
                f"[0, {self.n_classes + 1})"
            )
        offset = class_block * self.base_bins + self._offsets[name]
        return slice(offset, offset + self._partitions[name].n_intervals)

    def class_slices(self, name: str) -> tuple:
        """All of ``name``'s class-block slices: unlabeled, then classes."""
        self.require(name)
        return tuple(
            self.slice_of(name, block) for block in range(self.n_classes + 1)
        )

    def require(self, name: str) -> None:
        """Raise :class:`ValidationError` unless ``name`` is in the schema."""
        if name not in self._partitions:
            raise ValidationError(
                f"unknown attribute {name!r}; schema holds {list(self._names)}"
            )

    def compatible_with(self, other: "ColumnLayout") -> bool:
        """Same attributes, grids, and class count (merge/ingest compatibility)."""
        if self is other:
            return True
        return (
            self._names == other._names
            and self.n_classes == other.n_classes
            and all(
                np.array_equal(
                    self._partitions[n].edges, other._partitions[n].edges
                )
                for n in self._names
            )
        )

    def check_classes(self, classes) -> np.ndarray:
        """Validate a class column; return it as flat block offsets per record.

        ``classes`` must be a 1-D column of integer labels in
        ``[0, n_classes)``; the returned array holds each record's class
        block offset (``(class + 1) * base_bins``), ready to add to the
        located attribute indices.
        """
        if self.n_classes == 0:
            raise ValidationError(
                "this layout has no class partitions; build it with "
                "n_classes >= 1 to ingest labeled records"
            )
        labels = check_label_column(classes, n_classes=self.n_classes)
        return (labels + 1) * self.base_bins

    def prepare(self, batch, classes=None) -> "PreparedBatch":
        """Locate a ``{attribute: values}`` batch into fused flat indices.

        The pure, lock-free half of ingestion: values are validated,
        bucketed on their attribute's grid, and offset into the flat bin
        space.  Quantized columns (int8/int16 ndarrays of pre-located
        bin indices, the wire v5 payload) skip the ``locate`` entirely —
        each index is range-checked against the attribute's grid and
        offset directly, so compressed clients cost the server no
        ``searchsorted``.  With ``classes`` (one integer label per
        record, shared by every column of the batch) each fused index
        additionally lands in its record's class block, so labeled
        batches bin per class in the same single pass.  The returned
        :class:`PreparedBatch` can be handed to any shard built on this
        layout.
        """
        if not isinstance(batch, dict):
            raise ValidationError("batch must map attribute -> values")
        blocks = None if classes is None else self.check_classes(classes)
        located = []
        seen = np.zeros(len(self._names), dtype=np.int64)
        total = 0
        for name, values in batch.items():
            partition = self._partitions.get(name)
            if partition is None:
                raise ValidationError(
                    f"unknown attribute {name!r}; schema holds "
                    f"{list(self._names)}"
                )
            indices = _quantized_column(values)
            if indices is None:
                arr = check_1d_array(values, f"batch[{name!r}]", allow_empty=True)
            elif indices.ndim != 1:
                raise ValidationError(
                    f"batch[{name!r}] must be 1-dimensional, got shape "
                    f"{indices.shape}"
                )
            else:
                arr = indices
            if blocks is not None and arr.size != blocks.size:
                raise ValidationError(
                    f"batch[{name!r}] has {arr.size} value(s) but the class "
                    f"column has {blocks.size}; labeled batches need one "
                    "class label per record"
                )
            if arr.size == 0:
                continue
            if indices is None:
                fused = partition.locate(arr) + self._offsets[name]
            else:
                low, high = int(indices.min()), int(indices.max())
                if low < 0 or high >= partition.n_intervals:
                    raise ValidationError(
                        f"batch[{name!r}] quantized bin indices must lie in "
                        f"[0, {partition.n_intervals}), got [{low}, {high}]"
                    )
                fused = indices.astype(np.intp) + self._offsets[name]
            if blocks is not None:
                fused = fused + blocks
            located.append(fused)
            seen[self._index[name]] = arr.size
            total += arr.size
        if not located:
            flat = np.empty(0, dtype=np.intp)
        elif len(located) == 1:
            # single-attribute batches skip the concatenation entirely
            flat = located[0]
        else:
            flat = np.concatenate(located)
        return PreparedBatch(self, flat, seen, total)

    def quantize(self, batch) -> dict:
        """Locate a value batch into narrow per-attribute bin-index columns.

        The client half of the quantized wire path: each column is
        bucketed on its attribute's noise-expanded grid — exactly what
        :meth:`prepare` would do server-side — and returned at the
        narrowest width the grid permits (int8 for grids of at most 128
        intervals, int16 up to 32768; finer grids are rejected).  The
        width is a pure function of the schema, so every client of one
        service quantizes identically.  Feeding the result to
        ``encode_quantized`` → :meth:`prepare` yields bit-identical
        fused indices — and therefore bit-identical estimates — to
        shipping the float values themselves.

        Examples
        --------
        >>> from repro.core import Partition
        >>> from repro.service.shards import ColumnLayout
        >>> layout = ColumnLayout({"a": Partition.uniform(0, 1, 4)})
        >>> columns = layout.quantize({"a": [0.05, 0.95]})
        >>> columns["a"].tolist(), columns["a"].dtype.name
        ([0, 3], 'int8')
        """
        if not isinstance(batch, dict):
            raise ValidationError("batch must map attribute -> values")
        quantized = {}
        for name, values in batch.items():
            partition = self._partitions.get(name)
            if partition is None:
                raise ValidationError(
                    f"unknown attribute {name!r}; schema holds "
                    f"{list(self._names)}"
                )
            arr = check_1d_array(values, f"batch[{name!r}]", allow_empty=True)
            n_intervals = partition.n_intervals
            if n_intervals <= 0x80:
                dtype = _QUANTIZED_DTYPES[0]
            elif n_intervals <= 0x8000:
                dtype = _QUANTIZED_DTYPES[1]
            else:
                raise ValidationError(
                    f"attribute {name!r} has {n_intervals} intervals; "
                    "quantized columns cap grids at 32768 (int16 indices)"
                )
            quantized[name] = partition.locate(arr).astype(dtype)
        return quantized


class PreparedBatch:
    """A batch located into fused flat bin indices, ready to accumulate.

    Produced by :meth:`ColumnLayout.prepare` (or the ``prepare`` methods
    of :class:`HistogramShard` / :class:`ShardSet` /
    :class:`~repro.service.AggregationService`); consumed by
    ``ingest_prepared``.  Splitting ingestion this way keeps the O(batch)
    locate work outside every lock and lets one prepared batch be binned
    with a single fused ``np.bincount``.

    Examples
    --------
    >>> from repro.core import Partition
    >>> from repro.service.shards import ColumnLayout
    >>> layout = ColumnLayout({"x": Partition.uniform(0, 1, 4)})
    >>> prepared = layout.prepare({"x": [0.1, 0.9]})
    >>> prepared.total, prepared.flat.tolist()
    (2, [0, 3])
    """

    __slots__ = ("layout", "flat", "seen", "total")

    def __init__(self, layout, flat, seen, total) -> None:
        self.layout = layout
        self.flat = flat
        self.seen = seen
        self.total = int(total)


class _Stripe:
    """One writer thread's private accumulator within a shard."""

    __slots__ = ("counts", "seen", "lock")

    def __init__(self, total_bins: int, n_attributes: int) -> None:
        self.counts = np.zeros(total_bins)
        self.seen = np.zeros(n_attributes, dtype=np.int64)
        # owned by one writer thread, so acquiring it on the hot path
        # never contends; readers take it briefly while merging stripes
        self.lock = threading.Lock()


class HistogramShard:
    """One worker's running histogram partials, one per attribute.

    ``ingest`` buckets a batch of randomized values into the attribute's
    noise-expanded histogram — O(batch) work.  Bucketing happens outside
    any lock (it is pure); the accumulate lands in the calling thread's
    private *stripe*, so concurrent ingestion into the *same* shard
    never contends either: each writer owns its stripe, and reads merge
    the stripes (bit-exact — integer counts in float64 sum exactly in
    any order).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service.shards import HistogramShard
    >>> part = Partition.uniform(0, 1, 4)
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> y_part = part.expanded(noise.support_half_width())
    >>> shard = HistogramShard({"x": y_part})
    >>> shard.ingest({"x": [0.1, 0.4, 0.9]})
    3
    >>> shard.n_seen("x")
    3
    """

    def __init__(
        self, y_partitions, *, layout: ColumnLayout | None = None, n_classes: int = 0
    ) -> None:
        if layout is None:
            if not y_partitions:
                raise ValidationError("a shard needs at least one attribute")
            layout = ColumnLayout(y_partitions, n_classes=n_classes)
        self._layout = layout
        self._stripes: dict = {}
        self._stripes_lock = threading.Lock()

    @property
    def layout(self) -> ColumnLayout:
        """The shared flat-offset layout this shard accumulates on."""
        return self._layout

    @property
    def attributes(self) -> tuple:
        """Attribute names this shard accumulates, in schema order."""
        return self._layout.names

    def _stripe(self) -> _Stripe:
        """The calling thread's stripe, created on first use."""
        ident = threading.get_ident()
        stripe = self._stripes.get(ident)
        if stripe is None:
            with self._stripes_lock:
                stripe = self._stripes.get(ident)
                if stripe is None:
                    stripe = _Stripe(
                        self._layout.total_bins, len(self._layout.names)
                    )
                    self._stripes[ident] = stripe
        return stripe

    def _stripes_snapshot(self) -> tuple:
        with self._stripes_lock:
            return tuple(self._stripes.values())

    def prepare(self, batch, classes=None) -> PreparedBatch:
        """Locate a batch into fused flat indices (see :class:`ColumnLayout`)."""
        return self._layout.prepare(batch, classes)

    def ingest(self, batch, *, classes=None) -> int:
        """Absorb ``{attribute: randomized values}``; return records added.

        ``classes`` (one integer label per record) bins the batch into
        its per-class stripes; without it records land in the unlabeled
        partition.
        """
        return self.ingest_prepared(self._layout.prepare(batch, classes))

    def ingest_prepared(self, prepared: PreparedBatch) -> int:
        """Absorb a :class:`PreparedBatch`; return records added.

        The hot half of ingestion: one fused ``np.bincount`` bins every
        attribute of the batch, then the calling thread's stripe absorbs
        the binned counts under its (uncontended) stripe lock, keeping
        each batch atomic with respect to readers.
        """
        if not isinstance(prepared, PreparedBatch):
            raise ValidationError(
                "ingest_prepared() takes a PreparedBatch (from prepare()); "
                f"got {type(prepared).__name__}"
            )
        if not prepared.layout.compatible_with(self._layout):
            raise ValidationError(
                "prepared batch was built on a different schema/grid layout"
            )
        if prepared.total == 0:
            return 0
        binned = np.bincount(prepared.flat, minlength=self._layout.total_bins)
        stripe = self._stripe()
        with stripe.lock:
            stripe.counts += binned
            stripe.seen += prepared.seen
        return prepared.total

    def n_seen(self, name: str) -> int:
        """Records absorbed so far for ``name``."""
        k = self._layout.index_of(name)
        total = 0
        for stripe in self._stripes_snapshot():
            with stripe.lock:
                total += int(stripe.seen[k])
        return total

    def partial(self, name: str) -> tuple:
        """Merged ``(counts copy, n_seen)`` over this shard's stripes.

        Counts sum the attribute's class blocks (unlabeled plus every
        class), so class-aware shards serve the same all-records
        histogram as before — integer counts in float64 sum exactly in
        any order.
        """
        slices = self._layout.class_slices(name)
        k = self._layout.index_of(name)
        counts = np.zeros(slices[0].stop - slices[0].start)
        seen = 0
        for stripe in self._stripes_snapshot():
            with stripe.lock:
                for sl in slices:
                    counts += stripe.counts[sl]
                seen += int(stripe.seen[k])
        return counts, seen

    def partial_by_class(self, name: str) -> np.ndarray:
        """Merged per-block counts of ``name``: ``(n_classes + 1, bins)``.

        Row 0 is the unlabeled partition; row ``c + 1`` is class ``c``.
        A class-less shard returns a single row (the plain histogram).
        """
        slices = self._layout.class_slices(name)
        out = np.zeros((len(slices), slices[0].stop - slices[0].start))
        for stripe in self._stripes_snapshot():
            with stripe.lock:
                for block, sl in enumerate(slices):
                    out[block] += stripe.counts[sl]
        return out

    def _flat_partial(self) -> tuple:
        """Merged ``(flat counts, seen vector)`` over all stripes."""
        counts = np.zeros(self._layout.total_bins)
        seen = np.zeros(len(self._layout.names), dtype=np.int64)
        for stripe in self._stripes_snapshot():
            with stripe.lock:
                counts += stripe.counts
                seen += stripe.seen
        return counts, seen

    def _absorb_flat(self, counts: np.ndarray, seen: np.ndarray) -> None:
        """Fold pre-merged flat totals into the calling thread's stripe."""
        stripe = self._stripe()
        with stripe.lock:
            stripe.counts += counts
            stripe.seen += seen

    def absorb_counts(
        self, name: str, counts, n_seen: int, *, class_block: int = 0
    ) -> None:
        """Add pre-bucketed counts for one attribute (snapshot restore).

        ``class_block`` selects the partition the counts land in:
        0 (default) is the unlabeled block, ``c + 1`` is class ``c``.
        """
        sl = self._layout.slice_of(name, class_block)
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (sl.stop - sl.start,):
            raise ValidationError(
                f"counts for {name!r} must have {sl.stop - sl.start} bins, "
                f"got {counts.size}"
            )
        stripe = self._stripe()
        with stripe.lock:
            stripe.counts[sl] += counts
            stripe.seen[self._layout.index_of(name)] += int(n_seen)

    def replace_with(self, partials: dict) -> int:
        """Clear this shard, then absorb pre-merged per-class partials.

        ``partials`` maps attribute name to a ``(n_classes + 1, bins)``
        count matrix (row 0 unlabeled, row ``c + 1`` class ``c``) —
        the cluster coordinator's sync primitive: a worker ships its
        *cumulative* merged counts and replacing the worker's dedicated
        shard makes every re-push idempotent, so a retried sync can
        never double-count.  Attributes absent from ``partials`` end up
        empty (the worker has seen none of them).  Everything is
        validated before the clear, so a malformed mapping changes
        nothing; callers needing replace-vs-read atomicity serialize
        through the owning service's estimate lock.  Returns the record
        count now held.
        """
        if not isinstance(partials, dict):
            raise ValidationError(
                "partials must map attribute -> (n_classes + 1, bins) counts"
            )
        checked = []
        for name, counts in partials.items():
            slices = self._layout.class_slices(name)
            matrix = np.asarray(counts, dtype=float)
            bins = slices[0].stop - slices[0].start
            if matrix.shape != (len(slices), bins):
                raise ValidationError(
                    f"partials[{name!r}] must have shape "
                    f"({len(slices)}, {bins}), got {matrix.shape}"
                )
            checked.append((name, matrix))
        self.clear()
        total = 0
        for name, matrix in checked:
            for block, row in enumerate(matrix):
                row_seen = int(row.sum())
                if row_seen:
                    self.absorb_counts(name, row, row_seen, class_block=block)
                total += row_seen
        return total

    def merge_from(self, other: "HistogramShard") -> "HistogramShard":
        """Fold another shard's partials into this one (same schema)."""
        if not other._layout.compatible_with(self._layout):
            if other._layout.names != self._layout.names:
                raise ValidationError(
                    "cannot merge shards with different schemas"
                )
            raise ValidationError(
                "cannot merge shards bucketed on different grids"
            )
        counts, seen = other._flat_partial()
        self._absorb_flat(counts, seen)
        return self

    def clear(self) -> None:
        """Zero all partials."""
        for stripe in self._stripes_snapshot():
            with stripe.lock:
                stripe.counts[:] = 0.0
                stripe.seen[:] = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        total = int(self._flat_partial()[1].sum())
        return (
            f"HistogramShard(attributes={len(self._layout.names)}, "
            f"records={total})"
        )


class ShardSet:
    """A fixed number of :class:`HistogramShard` over one schema.

    Workers either address a shard explicitly (``shard=i`` — the
    one-worker-per-shard deployment) or let the set route round-robin;
    either way the accumulate itself is contention-free (striped per
    writer thread, see :class:`HistogramShard`).  ``merged`` sums the
    per-shard partials in O(shards x bins): because histogram counts are
    exact integers in float64, the merged counts are bit-identical to
    bucketing the whole stream into a single histogram, at any shard
    count, thread count, and batch interleaving.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service.shards import ShardSet
    >>> part = Partition.uniform(0, 1, 4)
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> y_part = part.expanded(noise.support_half_width())
    >>> shards = ShardSet({"x": y_part}, n_shards=2)
    >>> shards.ingest({"x": [0.1, 0.2]}, shard=0)
    2
    >>> shards.ingest({"x": [0.8]}, shard=1)
    1
    >>> counts, seen = shards.merged("x")
    >>> seen, float(counts.sum())
    (3, 3.0)
    """

    def __init__(
        self, y_partitions, n_shards: int = 1, *, n_classes: int = 0
    ) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        self._layout = ColumnLayout(y_partitions, n_classes=n_classes)
        self._shards = tuple(
            HistogramShard(None, layout=self._layout)
            for _ in range(int(n_shards))
        )
        self._route = 0
        self._route_lock = threading.Lock()

    @property
    def layout(self) -> ColumnLayout:
        """The flat-offset layout shared by every shard."""
        return self._layout

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_classes(self) -> int:
        """Class labels the layout partitions by (0 = class-unaware)."""
        return self._layout.n_classes

    @property
    def attributes(self) -> tuple:
        """Attribute names, in schema order."""
        return self._layout.names

    def shard(self, index: int) -> HistogramShard:
        """The ``index``-th shard (for one-worker-per-shard deployments)."""
        if not 0 <= index < len(self._shards):
            raise ValidationError(
                f"shard index {index} out of range [0, {len(self._shards)})"
            )
        return self._shards[index]

    def __iter__(self):
        return iter(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def prepare(self, batch, classes=None) -> PreparedBatch:
        """Locate a batch into fused flat indices, outside any lock."""
        return self._layout.prepare(batch, classes)

    def ingest(self, batch, *, shard: int | None = None, classes=None) -> int:
        """Route a batch to a shard (round-robin unless ``shard`` given)."""
        return self.ingest_prepared(
            self._layout.prepare(batch, classes), shard=shard
        )

    def ingest_prepared(
        self, prepared: PreparedBatch, *, shard: int | None = None
    ) -> int:
        """Route a :class:`PreparedBatch` to a shard and accumulate it."""
        if shard is None:
            with self._route_lock:
                shard = self._route
                self._route = (self._route + 1) % len(self._shards)
        return self.shard(shard).ingest_prepared(prepared)

    def merged(self, name: str) -> tuple:
        """Merged ``(counts, n_seen)`` for one attribute — O(shards x bins)."""
        self._layout.require(name)
        counts = np.zeros(self._layout.partition(name).n_intervals)
        seen = 0
        for shard in self._shards:
            partial, partial_seen = shard.partial(name)
            counts += partial
            seen += partial_seen
        return counts, seen

    def merged_by_class(self, name: str) -> np.ndarray:
        """Merged per-class counts of ``name``: ``(n_classes + 1, bins)``.

        Row 0 is the unlabeled partition, row ``c + 1`` class ``c``;
        rows sum (exactly) to :meth:`merged`'s all-records histogram.
        """
        self._layout.require(name)
        out = np.zeros(
            (
                self._layout.n_classes + 1,
                self._layout.partition(name).n_intervals,
            )
        )
        for shard in self._shards:
            out += shard.partial_by_class(name)
        return out

    def merge(self) -> dict:
        """Merged partials for every attribute: ``{name: (counts, n_seen)}``."""
        return {name: self.merged(name) for name in self._layout.names}

    def n_seen(self, name: str | None = None):
        """Records absorbed for one attribute, or ``{name: n}`` for all.

        Sums the shards' integer counters directly — no histogram copies
        — so the ingest/health hot paths never pay the O(bins) merge.
        """
        if name is not None:
            self._layout.require(name)
            return sum(shard.n_seen(name) for shard in self._shards)
        return {attr: self.n_seen(attr) for attr in self._layout.names}

    def clear(self) -> None:
        """Zero every shard."""
        for shard in self._shards:
            shard.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardSet(n_shards={len(self._shards)}, "
            f"attributes={len(self._layout.names)})"
        )
