"""E6 — Classification accuracy at 100 % privacy, Gaussian noise (paper §5).

The Gaussian twin of E5.  At matched 95 %-confidence privacy, Gaussian
noise concentrates most of its mass near zero, so the Randomized baseline
is much less damaged than under uniform noise and the reconstruction gap
narrows — consistent with the paper's observation that Gaussian noise is
the gentler randomizer per unit of stated privacy.  The shape to hold:
ByClass at least matches Randomized overall and clearly wins on some
functions, while tracking Original on Fn1.
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.experiments import ClassificationConfig, run_strategy_comparison
from repro.experiments.reporting import accuracy_matrix

FUNCTIONS = (1, 2, 3, 4, 5)
STRATEGIES = ("original", "randomized", "global", "byclass")


@experiment(
    "e6",
    title="Accuracy at 100% privacy, Gaussian noise",
    tags=("classification",),
    seed=600,
)
def run_e6(ctx):
    config = ClassificationConfig(
        functions=FUNCTIONS,
        strategies=STRATEGIES,
        noise="gaussian",
        privacy=1.0,
        n_train=ctx.scaled(10_000),
        n_test=ctx.scaled(3_000),
        seed=ctx.seed,
    )
    ctx.record(
        noise=config.noise,
        privacy=config.privacy,
        n_train=config.n_train,
        n_test=config.n_test,
        strategies=",".join(STRATEGIES),
    )
    rows = run_strategy_comparison(config)
    ctx.report(
        "E6: accuracy (%) at 100% privacy, gaussian noise, "
        f"n_train={config.n_train}\n" + accuracy_matrix(rows),
        name="e6_accuracy_100privacy_gaussian",
    )

    acc = {(r.function, r.strategy): r.accuracy for r in rows}
    metrics = {
        f"fn{fn}_{strategy}": float(acc[(fn, strategy)])
        for fn in FUNCTIONS
        for strategy in STRATEGIES
    }
    wins = 0
    for fn in FUNCTIONS:
        # never materially worse than the randomized baseline ...
        assert acc[(fn, "byclass")] > acc[(fn, "randomized")] - 0.07, fn
        wins += acc[(fn, "byclass")] > acc[(fn, "randomized")]
    # ... and clearly better on several functions
    assert wins >= 2
    assert acc[(1, "byclass")] > acc[(1, "original")] - 0.08
    metrics["byclass_wins"] = int(wins)
    return metrics


def test_e6_accuracy_100privacy_gaussian(benchmark):
    run_experiment(benchmark, "e6")
