"""Tests for the ppdm command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reconstruct_defaults(self):
        args = build_parser().parse_args(["reconstruct"])
        assert args.shape == "plateau"
        assert args.noise == "uniform"

    def test_classify_args(self):
        args = build_parser().parse_args(
            ["classify", "--functions", "1", "3", "--privacy", "0.5"]
        )
        assert args.functions == [1, 3]
        assert args.privacy == 0.5

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "--strategies", "psychic"])

    def test_sweep_levels(self):
        args = build_parser().parse_args(["sweep", "--levels", "0.1", "0.9"])
        assert args.levels == [0.1, 0.9]


class TestCommands:
    def test_reconstruct_prints_table(self, capsys):
        code = main(
            ["reconstruct", "--n", "800", "--intervals", "8", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reconstructed" in out
        assert "L1(original, randomized)" in out

    def test_privacy_prints_attributes(self, capsys):
        code = main(["privacy", "--privacy", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "salary" in out
        assert "gaussian" in out

    def test_quest_info(self, capsys):
        code = main(["quest-info", "--n", "500", "--function", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Group A fraction" in out
        assert "zipcode" in out

    def test_classify_small(self, capsys):
        code = main(
            [
                "classify",
                "--functions", "1",
                "--strategies", "original", "byclass",
                "--train", "800",
                "--test", "300",
                "--privacy", "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "byclass" in out

    def test_breach_table(self, capsys):
        code = main(["breach", "--n", "2000", "--levels", "1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "amplification" in out
        assert "uniform" in out and "gaussian" in out

    def test_classify_valueclass_strategy(self, capsys):
        code = main(
            [
                "classify",
                "--functions", "1",
                "--strategies", "valueclass",
                "--train", "600",
                "--test", "200",
                "--privacy", "0.25",
            ]
        )
        assert code == 0
        assert "valueclass" in capsys.readouterr().out

    def test_sweep_small(self, capsys):
        code = main(
            [
                "sweep",
                "--function", "1",
                "--levels", "0.5",
                "--strategies", "byclass",
                "--train", "800",
                "--test", "300",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "accuracy %" in out


class TestServeIngestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.spec is None and args.snapshot is None
        assert args.max_requests is None

    def test_ingest_attribute_optional_at_parse_time(self):
        # full-row JSON column dicts name their own attributes; the
        # single-column requirement is enforced at command time
        args = build_parser().parse_args(["ingest", "values.txt"])
        assert args.attribute is None

    def test_ingest_args(self):
        args = build_parser().parse_args(
            [
                "ingest", "values.txt",
                "--attribute", "age",
                "--snapshot", "snap.json",
                "--seed", "3",
                "--estimate",
            ]
        )
        assert str(args.values) == "values.txt"
        assert args.attribute == "age"
        assert args.estimate
        assert not args.already_randomized

    def test_ingest_load_generation_defaults(self):
        args = build_parser().parse_args(
            ["ingest", "values.txt", "--attribute", "age"]
        )
        assert args.wire == "json"
        assert args.concurrency == 1
        assert args.repeat == 1

    def test_ingest_load_generation_flags(self):
        args = build_parser().parse_args(
            [
                "ingest", "values.txt",
                "--attribute", "age",
                "--url", "http://127.0.0.1:8000",
                "--wire", "columns",
                "--concurrency", "4",
                "--repeat", "32",
            ]
        )
        assert args.wire == "columns"
        assert args.concurrency == 4
        assert args.repeat == 32

    def test_ingest_rejects_unknown_wire(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["ingest", "values.txt", "--attribute", "age",
                 "--wire", "protobuf"]
            )

    def test_codec_defaults_to_none(self):
        assert build_parser().parse_args(
            ["ingest", "values.txt"]
        ).codec == "none"
        assert build_parser().parse_args(["serve"]).codec == "none"

    def test_codec_rejects_unknown_token(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["ingest", "values.txt", "--codec", "brotli"]
            )


class TestServeIngestCommands:
    @pytest.fixture
    def spec_file(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "shards": 2,
                    "attributes": [
                        {
                            "name": "age",
                            "low": 20,
                            "high": 80,
                            "noise": "uniform",
                            "privacy": 1.0,
                            "intervals": 8,
                        }
                    ],
                }
            )
        )
        return path

    def test_serve_without_spec_exits_2(self, capsys):
        code = main(["serve"])
        assert code == 2
        assert "needs --spec" in capsys.readouterr().err

    def test_serve_creates_snapshot(self, capsys, tmp_path, spec_file):
        snapshot = tmp_path / "snap.json"
        code = main(
            [
                "serve",
                "--spec", str(spec_file),
                "--snapshot", str(snapshot),
                "--port", "0",
                "--max-requests", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving 1 attribute(s)" in out
        assert snapshot.is_file()

    def test_ingest_into_snapshot_then_estimate(
        self, capsys, tmp_path, spec_file
    ):
        import numpy as np

        snapshot = tmp_path / "snap.json"
        assert main(
            [
                "serve", "--spec", str(spec_file),
                "--snapshot", str(snapshot),
                "--port", "0", "--max-requests", "0",
            ]
        ) == 0
        values = tmp_path / "ages.txt"
        rng = np.random.default_rng(4)
        np.savetxt(values, rng.normal(45, 8, 1_000))
        capsys.readouterr()

        code = main(
            [
                "ingest", str(values),
                "--attribute", "age",
                "--snapshot", str(snapshot),
                "--seed", "5",
                "--estimate",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ingested 1000 record(s)" in out
        assert "Estimated distribution of 'age'" in out

        # the snapshot persisted the ingested records
        code = main(
            [
                "ingest", str(values),
                "--attribute", "age",
                "--snapshot", str(snapshot),
                "--seed", "6",
            ]
        )
        assert code == 0
        assert "now holds 2000" in capsys.readouterr().out

    def test_serve_restore_applies_shards_override(
        self, capsys, tmp_path, spec_file
    ):
        snapshot = tmp_path / "snap.json"
        assert main(
            [
                "serve", "--spec", str(spec_file),
                "--snapshot", str(snapshot),
                "--port", "0", "--max-requests", "0",
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "serve",
                "--snapshot", str(snapshot),
                "--spec", str(spec_file),
                "--shards", "8",
                "--port", "0", "--max-requests", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "with 8 shard(s)" in out
        assert "--spec ignored" in out

    def test_serve_missing_spec_file_exits_2(self, capsys, tmp_path):
        code = main(["serve", "--spec", str(tmp_path / "absent.json")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_serve_workers_validates_count(self, capsys, spec_file):
        code = main(
            ["serve", "--spec", str(spec_file), "--workers", "0"]
        )
        assert code == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_serve_workers_rejects_snapshot(self, capsys, tmp_path, spec_file):
        code = main(
            [
                "serve", "--spec", str(spec_file),
                "--snapshot", str(tmp_path / "snap.json"),
                "--workers", "2",
            ]
        )
        assert code == 2
        assert "cannot restore" in capsys.readouterr().err

    def test_serve_workers_rejects_max_requests(self, capsys, spec_file):
        code = main(
            [
                "serve", "--spec", str(spec_file),
                "--workers", "2", "--max-requests", "1",
            ]
        )
        assert code == 2
        assert "--max-requests" in capsys.readouterr().err

    def test_serve_workers_needs_spec(self, capsys):
        code = main(["serve", "--workers", "2"])
        assert code == 2
        assert "needs --spec" in capsys.readouterr().err

    def test_serve_workers_missing_spec_file_exits_2(self, capsys, tmp_path):
        code = main(
            [
                "serve", "--workers", "1",
                "--spec", str(tmp_path / "absent.json"),
            ]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_serve_workers_train_needs_classes(self, capsys, spec_file):
        code = main(
            [
                "serve", "--spec", str(spec_file),
                "--workers", "1", "--train",
            ]
        )
        assert code == 2
        assert "class-aware" in capsys.readouterr().err

    def test_serve_malformed_spec_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["serve", "--spec", str(bad)])
        assert code == 2
        assert "spec file" in capsys.readouterr().err

    def test_ingest_malformed_json_values_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(
            ["ingest", str(bad), "--attribute", "age",
             "--snapshot", str(tmp_path / "snap.json")]
        )
        assert code == 2
        assert "values file" in capsys.readouterr().err

    def test_ingest_unknown_attribute_exits_2(
        self, capsys, tmp_path, spec_file
    ):
        snapshot = tmp_path / "snap.json"
        assert main(
            [
                "serve", "--spec", str(spec_file),
                "--snapshot", str(snapshot),
                "--port", "0", "--max-requests", "0",
            ]
        ) == 0
        values = tmp_path / "v.txt"
        values.write_text("1.0\n2.0\n")
        capsys.readouterr()
        code = main(
            ["ingest", str(values), "--attribute", "nope",
             "--snapshot", str(snapshot)]
        )
        assert code == 2
        assert "unknown attribute" in capsys.readouterr().err

    def test_ingest_needs_exactly_one_target(self, capsys, tmp_path):
        values = tmp_path / "v.txt"
        values.write_text("1.0\n")
        code = main(["ingest", str(values), "--attribute", "age"])
        assert code == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_ingest_missing_values_file_exits_2(self, capsys, tmp_path):
        code = main(
            [
                "ingest", str(tmp_path / "absent.txt"),
                "--attribute", "age",
                "--snapshot", str(tmp_path / "snap.json"),
            ]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_ingest_load_flags_need_url(self, capsys, tmp_path):
        values = tmp_path / "ages.json"
        values.write_text("[40.0]")
        code = main(
            ["ingest", str(values), "--attribute", "age",
             "--snapshot", str(tmp_path / "snap.json"), "--wire", "columns"]
        )
        assert code == 2
        assert "--url" in capsys.readouterr().err

    def test_ingest_codec_needs_url(self, capsys, tmp_path):
        values = tmp_path / "ages.json"
        values.write_text("[40.0]")
        code = main(
            ["ingest", str(values), "--attribute", "age",
             "--snapshot", str(tmp_path / "snap.json"), "--codec", "zlib"]
        )
        assert code == 2
        assert "--url" in capsys.readouterr().err

    def test_serve_codec_needs_workers(self, capsys, spec_file):
        code = main(
            ["serve", "--spec", str(spec_file), "--port", "0",
             "--max-requests", "0", "--codec", "zlib"]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_ingest_zstd_without_package_is_a_clean_error(
        self, capsys, tmp_path
    ):
        try:
            import zstandard  # noqa: F401
        except ImportError:
            values = tmp_path / "ages.json"
            values.write_text("[40.0]")
            code = main(
                ["ingest", str(values), "--attribute", "age",
                 "--url", "http://127.0.0.1:1", "--codec", "zstd",
                 "--already-randomized"]
            )
            assert code == 2
            assert "zstandard" in capsys.readouterr().err
        else:
            pytest.skip("zstandard installed; the error path is unreachable")

    def test_ingest_zlib_codec_against_live_server(
        self, capsys, tmp_path, spec_file
    ):
        """Compressed load run: every request carries Content-Encoding,
        every record lands."""
        import json
        import threading

        from repro.service import ServiceHTTPServer, service_from_spec

        service = service_from_spec(json.loads(spec_file.read_text()))
        server = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            values = tmp_path / "ages.json"
            values.write_text(json.dumps([40.0, 45.0, 50.0] * 20))
            code = main(
                [
                    "ingest", str(values),
                    "--attribute", "age",
                    "--url", server.url,
                    "--wire", "columns",
                    "--codec", "zlib",
                    "--seed", "7",
                    "--repeat", "3",
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "ingested 180 record(s) in 3 request(s)" in out
            assert service.n_seen("age") == 180
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_ingest_rejects_nonpositive_repeat(self, capsys, tmp_path):
        values = tmp_path / "ages.json"
        values.write_text("[40.0]")
        code = main(
            ["ingest", str(values), "--attribute", "age",
             "--url", "http://127.0.0.1:1", "--repeat", "0"]
        )
        assert code == 2
        assert ">= 1" in capsys.readouterr().err

    def test_ingest_json_values_against_live_server(self, capsys, tmp_path, spec_file):
        """Full loop: background server, URL-mode ingest, estimate."""
        import json
        import threading

        from repro.service import ServiceHTTPServer, service_from_spec

        service = service_from_spec(json.loads(spec_file.read_text()))
        server = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            values = tmp_path / "ages.json"
            values.write_text(json.dumps([40.0, 45.0, 50.0] * 50))
            code = main(
                [
                    "ingest", str(values),
                    "--attribute", "age",
                    "--url", server.url,
                    "--seed", "7",
                    "--estimate",
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "ingested 150 record(s)" in out
            assert "Estimated distribution of 'age'" in out
            assert service.n_seen("age") == 150
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_ingest_columnar_load_run_against_live_server(
        self, capsys, tmp_path, spec_file
    ):
        """The load-generator shape: binary wire, repeats, parallel
        persistent connections — all records land, estimates still work."""
        import json
        import threading

        from repro.service import ServiceHTTPServer, service_from_spec

        service = service_from_spec(json.loads(spec_file.read_text()))
        server = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            values = tmp_path / "ages.json"
            values.write_text(json.dumps([40.0, 45.0, 50.0] * 20))
            code = main(
                [
                    "ingest", str(values),
                    "--attribute", "age",
                    "--url", server.url,
                    "--wire", "columns",
                    "--repeat", "5",
                    "--concurrency", "2",
                    "--seed", "7",
                    "--estimate",
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "ingested 300 record(s) in 5 request(s) (columns wire)" in out
            assert "load run: 2 connection(s)" in out
            assert service.n_seen("age") == 300
        finally:
            server.shutdown()
            thread.join(timeout=5)


class TestTrainCommand:
    @pytest.fixture
    def spec_file(self, tmp_path):
        import json

        path = tmp_path / "plain_spec.json"
        path.write_text(
            json.dumps(
                {
                    "shards": 2,
                    "attributes": [
                        {
                            "name": "age",
                            "low": 20,
                            "high": 80,
                            "noise": "uniform",
                            "privacy": 1.0,
                            "intervals": 8,
                        }
                    ],
                }
            )
        )
        return path

    @pytest.fixture
    def class_spec_file(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "shards": 2,
                    "classes": 2,
                    "attributes": [
                        {
                            "name": "age",
                            "low": 20,
                            "high": 80,
                            "noise": "uniform",
                            "privacy": 1.0,
                            "intervals": 8,
                        }
                    ],
                }
            )
        )
        return path

    @pytest.fixture
    def train_server(self, class_spec_file):
        import json
        import threading

        from repro.service import (
            ServiceHTTPServer,
            TrainingService,
            service_from_spec,
        )

        service = service_from_spec(json.loads(class_spec_file.read_text()))
        training = TrainingService(service)
        server = ServiceHTTPServer(service, port=0, training=training)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server, service, training
        server.shutdown()
        thread.join(timeout=5)

    def _feed(self, training):
        import numpy as np

        rng = np.random.default_rng(12)
        young = rng.uniform(22, 45, 300)
        old = rng.uniform(55, 78, 300)
        noise = training.service.spec("age").randomizer
        training.ingest({"age": noise.randomize(young, seed=1)}, [0] * 300)
        training.ingest({"age": noise.randomize(old, seed=2)}, [1] * 300)

    def test_train_parser_defaults(self):
        args = build_parser().parse_args(["train", "--url", "http://x"])
        assert args.strategy == "byclass"
        assert args.save is None
        assert not args.show_tree

    def test_train_against_live_server(self, capsys, tmp_path, train_server):
        from repro import serialize
        from repro.service import TrainedModel

        server, _, training = train_server
        self._feed(training)
        saved = tmp_path / "model.json"
        code = main(
            [
                "train", "--url", server.url,
                "--strategy", "byclass",
                "--save", str(saved),
                "--show-tree",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trained byclass tree on 600 labeled record(s)" in out
        assert "age <" in out  # the printed split structure
        model = serialize.load(saved)
        assert isinstance(model, TrainedModel)
        assert model.tree.identical_to(training.model("byclass").tree)

    def test_train_bad_strategy_exits_2(self, capsys):
        code = main(["train", "--url", "http://127.0.0.1:1",
                     "--strategy", "nope"])
        assert code == 2
        assert "--strategy" in capsys.readouterr().err

    def test_train_without_training_server_exits_2(self, capsys, spec_file):
        import json
        import threading

        from repro.service import ServiceHTTPServer, service_from_spec

        service = service_from_spec(json.loads(spec_file.read_text()))
        server = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            code = main(["train", "--url", server.url])
            assert code == 2
            assert "training" in capsys.readouterr().err
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_serve_train_needs_class_aware_spec(self, capsys, spec_file):
        code = main(
            ["serve", "--spec", str(spec_file), "--port", "0",
             "--max-requests", "0", "--train"]
        )
        assert code == 2
        assert "class-aware" in capsys.readouterr().err

    def test_ingest_class_label_reports_per_class(
        self, capsys, tmp_path, train_server
    ):
        import json

        server, service, _ = train_server
        values = tmp_path / "ages.json"
        values.write_text(json.dumps([30.0, 35.0, 40.0] * 10))
        code = main(
            [
                "ingest", str(values),
                "--attribute", "age",
                "--url", server.url,
                "--class-label", "1",
                "--wire", "columns",
                "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ingested 30 record(s)" in out
        assert "per-class records for 'age'" in out
        assert "class 1=30" in out
        assert service.n_seen_by_class("age")["1"] == 30

    def test_ingest_class_label_into_snapshot(
        self, capsys, tmp_path, class_spec_file
    ):
        snapshot = tmp_path / "snap.json"
        assert main(
            ["serve", "--spec", str(class_spec_file),
             "--snapshot", str(snapshot), "--port", "0",
             "--max-requests", "0"]
        ) == 0
        values = tmp_path / "v.txt"
        values.write_text("30.0\n40.0\n")
        capsys.readouterr()
        code = main(
            ["ingest", str(values), "--attribute", "age",
             "--snapshot", str(snapshot), "--class-label", "0",
             "--seed", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "class 0=2" in out

    def test_full_row_dict_file_feeds_multi_attribute_training(
        self, capsys, tmp_path
    ):
        """A JSON column dict ingests full labeled rows, so --class-label
        works against a multi-attribute --train server."""
        import json
        import threading

        import numpy as np

        from repro.service import (
            ServiceHTTPServer,
            TrainingService,
            service_from_spec,
        )

        service = service_from_spec(
            {
                "classes": 2,
                "attributes": [
                    {"name": "age", "low": 20, "high": 80, "privacy": 1.0,
                     "intervals": 8},
                    {"name": "salary", "low": 0, "high": 100_000,
                     "privacy": 1.0, "intervals": 8},
                ],
            }
        )
        training = TrainingService(service)
        server = ServiceHTTPServer(service, port=0, training=training)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            rng = np.random.default_rng(5)
            rows = tmp_path / "rows.json"
            rows.write_text(
                json.dumps(
                    {
                        "age": rng.uniform(22, 44, 200).tolist(),
                        "salary": rng.uniform(10_000, 90_000, 200).tolist(),
                    }
                )
            )
            code = main(
                ["ingest", str(rows), "--url", server.url,
                 "--class-label", "0", "--wire", "columns", "--seed", "6"]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "ingested 400 record(s)" in out
            assert "per-class records for 'age'" in out
            assert "per-class records for 'salary'" in out
            assert training.n_buffered == 200
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_single_column_file_still_needs_attribute(self, capsys, tmp_path):
        values = tmp_path / "v.txt"
        values.write_text("1.0\n")
        code = main(["ingest", str(values), "--snapshot",
                     str(tmp_path / "s.json")])
        assert code == 2
        assert "--attribute is required" in capsys.readouterr().err

    def test_ragged_dict_file_rejected(self, capsys, tmp_path):
        import json

        rows = tmp_path / "rows.json"
        rows.write_text(json.dumps({"a": [1.0, 2.0], "b": [3.0]}))
        code = main(["ingest", str(rows), "--snapshot",
                     str(tmp_path / "s.json")])
        assert code == 2
        assert "share one length" in capsys.readouterr().err

    def test_serve_with_train_announces_endpoints(
        self, capsys, tmp_path, class_spec_file
    ):
        code = main(
            ["serve", "--spec", str(class_spec_file), "--port", "0",
             "--max-requests", "0", "--train"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "/train /model" in out
        assert "2 class(es)" in out


class TestBenchParser:
    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bench_run_defaults(self):
        args = build_parser().parse_args(["bench", "run"])
        assert args.jobs == 1
        assert args.seed is None
        assert args.tags is None
        assert str(args.out).endswith("artifacts")

    def test_bench_run_selection_args(self):
        args = build_parser().parse_args(
            ["bench", "run", "--tags", "smoke", "engine", "--jobs", "4"]
        )
        assert args.tags == ["smoke", "engine"]
        assert args.jobs == 4

    def test_bench_compare_positional_dirs(self):
        args = build_parser().parse_args(
            ["bench", "compare", "a", "b", "--fail-on-regression", "2x"]
        )
        assert str(args.baseline) == "a" and str(args.candidate) == "b"
        assert args.fail_on_regression == "2x"
        assert not args.wall_warn_only


class TestBenchCommands:
    def test_bench_list_shows_experiments(self, capsys):
        code = main(["bench", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "e1" in out and "e19_byclass" in out
        assert "smoke" in out

    def test_bench_list_filters_by_tag(self, capsys):
        code = main(["bench", "list", "--tags", "engine"])
        out = capsys.readouterr().out
        assert code == 0
        assert "e19_local" in out
        assert "\ne1 " not in out

    def test_bench_run_single_experiment(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        code = main(
            [
                "bench", "run",
                "--ids", "e17",
                "--out", str(out_dir),
                "--no-tables",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "e17" in out and "ok" in out
        assert (out_dir / "BENCH_e17.json").exists()

    def test_bench_run_unknown_id_exits_2(self, capsys):
        code = main(["bench", "run", "--ids", "nope"])
        assert code == 2
        assert "unknown experiment id" in capsys.readouterr().err

    def test_bench_run_invalid_scale_exits_2(self, capsys):
        code = main(["bench", "run", "--ids", "e17", "--scale", "0"])
        assert code == 2
        assert "scale must be positive" in capsys.readouterr().err

    def test_bench_run_off_seed_skips_reference_tables(self, capsys, tmp_path):
        code = main(
            ["bench", "run", "--ids", "e17", "--seed", "5", "--out", str(tmp_path)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "skipping benchmarks/results" in captured.err
        assert (tmp_path / "BENCH_e17.json").exists()

    def test_bench_compare_missing_dir_exits_2(self, capsys, tmp_path):
        code = main(
            ["bench", "compare", str(tmp_path / "a"), str(tmp_path / "b")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_run_then_compare_round_trip(self, capsys, tmp_path):
        base = tmp_path / "base"
        assert main(
            ["bench", "run", "--ids", "e17", "--out", str(base), "--no-tables"]
        ) == 0
        code = main(
            ["bench", "compare", str(base), str(base), "--fail-on-regression", "1.1x"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "result: PASS" in out
