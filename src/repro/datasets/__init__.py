"""Workloads: the Quest synthetic generator and 1-D shape densities.

* :mod:`repro.datasets.schema` — attribute metadata and the column-oriented
  :class:`~repro.datasets.schema.Table` container,
* :mod:`repro.datasets.quest` — the paper's evaluation workload (9
  attributes, classification functions Fn1–Fn5),
* :mod:`repro.datasets.shapes` — the "plateau"/"triangles" densities used
  for the reconstruction figures.
"""

from repro.datasets.schema import Attribute, Table

__all__ = ["Attribute", "Table"]
