"""Tests for the static analyzer behind ``ppdm lint``.

Three layers:

* unit tests for the registry, findings/baseline machinery, and walker;
* fixture tests: the known-bad corpus under ``tests/fixtures/analysis``
  must light up every rule family, and the known-good exemplar must
  stay silent;
* self-check: ``ppdm lint`` over the real tree must match the committed
  baseline exactly, and deliberately moving a guarded mutation in
  ``shards.py`` outside its lock must be caught by L001.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_BASELINE,
    REGISTRY,
    CheckerRegistry,
    Finding,
    RuleSpec,
    checker,
    diff_baseline,
    fingerprint,
    format_baseline,
    lint_project,
    load_baseline,
    render_json,
    render_text,
    run_checkers,
    walk_project,
    write_baseline,
)
from repro.analysis.determinism import check_determinism
from repro.analysis.locks import check_locks
from repro.analysis.raising import check_raising
from repro.analysis.robustness import check_robustness
from repro.analysis.walker import ParsedModule, Project, iter_scoped, parse_source
from repro.analysis.wire_lint import check_wire
from repro.cli import main
from repro.exceptions import AnalysisError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"


def load_fixture(name: str, relpath: str, category: str) -> ParsedModule:
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return parse_source(source, relpath, category)


def rules_by_line(findings) -> set:
    return {(f.rule, f.line) for f in findings}


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_register_sorts_and_round_trips(self):
        reg = CheckerRegistry()

        @checker("zeta", title="Z", rules=(RuleSpec("Z001", "z"),), registry=reg)
        def check_z(project):
            return []

        @checker("alpha", title="A", rules=(RuleSpec("A001", "a"),), registry=reg)
        def check_a(project):
            return []

        assert reg.ids() == ("alpha", "zeta")
        assert reg.rule_ids() == ("A001", "Z001")
        assert reg.get("zeta").fn is check_z
        assert check_a.checker.id == "alpha"

    def test_duplicate_checker_id_rejected(self):
        reg = CheckerRegistry()

        @checker("dup", rules=(RuleSpec("X001", "x"),), registry=reg)
        def check_one(project):
            return []

        with pytest.raises(AnalysisError, match="duplicate checker id"):

            @checker("dup", rules=(RuleSpec("X002", "x"),), registry=reg)
            def check_two(project):
                return []

    def test_duplicate_rule_id_across_checkers_rejected(self):
        reg = CheckerRegistry()

        @checker("one", rules=(RuleSpec("X001", "x"),), registry=reg)
        def check_one(project):
            return []

        with pytest.raises(AnalysisError, match="duplicate rule id"):

            @checker("two", rules=(RuleSpec("X001", "x"),), registry=reg)
            def check_two(project):
                return []

    def test_invalid_rule_id_and_severity_rejected(self):
        with pytest.raises(AnalysisError, match="invalid rule id"):
            RuleSpec("lowercase1", "bad")
        with pytest.raises(AnalysisError, match="severity"):
            RuleSpec("X001", "bad", severity="fatal")
        with pytest.raises(AnalysisError, match="unknown categories"):
            RuleSpec("X001", "bad", categories=("nonsense",))

    def test_select_rules_validates_and_sorts(self):
        assert REGISTRY.select_rules(["L002", "L001"]) == ("L001", "L002")
        with pytest.raises(AnalysisError, match="unknown rule id"):
            REGISTRY.select_rules(["Z999"])

    def test_global_registry_has_all_five_checkers(self):
        assert REGISTRY.ids() == (
            "determinism", "locks", "raising", "robustness", "wire"
        )
        assert set(REGISTRY.rule_ids()) == {
            "D001", "D002", "D003",
            "E001", "E002",
            "L001", "L002", "L003",
            "R001",
            "W001", "W002",
        }


# ---------------------------------------------------------------------------
# findings / baseline machinery
# ---------------------------------------------------------------------------


class TestBaseline:
    def make(self, rule="L001", path="src/repro/x.py", line=3, digest=""):
        return Finding(
            rule=rule, path=path, line=line, scope="f", message="m",
            digest=digest,
        )

    def test_fingerprint_ignores_line_number_not_text(self):
        a = fingerprint(self.make(line=3), "self.n = 1")
        b = fingerprint(self.make(line=300), "  self.n = 1  ")
        c = fingerprint(self.make(line=3), "self.n = 2")
        assert a == b
        assert a != c

    def test_baseline_round_trip(self, tmp_path):
        findings = [self.make(digest="abc123abc123")]
        path = tmp_path / "baseline.txt"
        path.write_text(format_baseline(findings))
        accepted = load_baseline(path)
        new, baselined, stale = diff_baseline(findings, accepted)
        assert (new, len(baselined), stale) == ([], 1, [])

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.txt") == Counter()

    def test_malformed_baseline_line_raises(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("L001 only three fields\nnot enough\n")
        with pytest.raises(AnalysisError, match="baseline lines are"):
            load_baseline(path)

    def test_stale_entries_surface(self):
        gone = self.make(digest="feedfeedfeed")
        accepted = Counter({("L001", gone.path, "f", gone.digest): 1})
        new, baselined, stale = diff_baseline([], accepted)
        assert new == [] and baselined == []
        assert stale == [("L001", gone.path, "f", "feedfeedfeed")]

    def test_multiset_semantics(self):
        # two identical findings, one baselined: one passes, one is new
        first = self.make(digest="aaaaaaaaaaaa")
        second = self.make(digest="aaaaaaaaaaaa")
        accepted = Counter({("L001", first.path, "f", first.digest): 1})
        new, baselined, stale = diff_baseline([first, second], accepted)
        assert len(new) == 1 and len(baselined) == 1 and stale == []


# ---------------------------------------------------------------------------
# walker
# ---------------------------------------------------------------------------


class TestWalker:
    def test_parse_error_becomes_p000(self):
        module = parse_source("def broken(:\n", "src/repro/x.py", "library")
        assert module.tree is None
        assert module.parse_error is not None
        assert module.parse_error.rule == "P000"
        result = lint_project(project=Project([module]), baseline=None)
        assert [f.rule for f in result.new] == ["P000"]

    def test_suppressions_located_by_tokenizer(self):
        source = (
            "x = 1  # ppdm: ignore[D001, L002]\n"
            'y = "# ppdm: ignore[W001]"\n'
            "z = 3  # ppdm: ignore[*]\n"
        )
        module = parse_source(source, "src/repro/x.py", "library")
        assert module.suppressed(1) == {"D001", "L002"}
        assert module.suppressed(2) == set()  # inside a string literal
        assert module.suppressed(3) == {"*"}

    def test_iter_scoped_tracks_nesting(self):
        source = (
            "class A:\n"
            "    def f(self):\n"
            "        x = 1\n"
            "def g():\n"
            "    y = 2\n"
        )
        module = parse_source(source, "src/repro/x.py", "library")
        scopes = {
            node.targets[0].id: scope
            for node, scope in iter_scoped(module.tree)
            if hasattr(node, "targets") and hasattr(node.targets[0], "id")
        }
        assert scopes == {"x": "A.f", "y": "g"}

    def test_walk_project_covers_real_tree(self):
        project = walk_project(REPO_ROOT)
        categories = {m.category for m in project.modules}
        assert categories == {"library", "tools", "bench", "examples"}
        relpaths = [m.relpath for m in project.modules]
        assert relpaths == sorted(relpaths)
        assert "src/repro/analysis/runner.py" in relpaths
        assert not any(r.startswith("tests/") for r in relpaths)


# ---------------------------------------------------------------------------
# checkers on the fixture corpus
# ---------------------------------------------------------------------------


class TestLockChecker:
    def project(self):
        return Project(
            [load_fixture("bad_locks.py", "src/repro/fix_locks.py", "library")]
        )

    def test_all_three_rules_fire(self):
        found = rules_by_line(check_locks(self.project()))
        assert ("L001", 26) in found  # self.count = 0 outside the lock
        assert ("L002", 30) in found  # time.sleep under the lock
        assert any(rule == "L003" for rule, _ in found)

    def test_init_mutations_exempt(self):
        findings = [f for f in check_locks(self.project()) if f.rule == "L001"]
        assert all("__init__" not in f.scope for f in findings)
        assert [f.line for f in findings] == [26]

    def test_rule_selection_narrows(self):
        result = lint_project(
            project=self.project(), rules=["L002"], baseline=None
        )
        assert {f.rule for f in result.new} == {"L002"}


class TestDeterminismChecker:
    def project(self, category="library", relpath="src/repro/fix_det.py"):
        return Project(
            [load_fixture("bad_determinism.py", relpath, category)]
        )

    def test_expected_findings(self):
        found = rules_by_line(check_determinism(self.project()))
        assert ("D001", 13) in found  # np.random.seed
        assert ("D001", 14) in found  # np.random.uniform
        assert ("D001", 15) in found  # random.random
        assert ("D002", 20) in found  # default_rng outside rng.py
        assert ("D003", 24) in found  # seed = time.time_ns()
        assert ("D002", 25) in found and ("D003", 25) in found
        # perf_counter for timing never fires
        assert not any(line in (30, 31) for _, line in found)

    def test_applies_to_benchmarks_too(self):
        project = self.project(
            category="bench", relpath="benchmarks/bench_fix.py"
        )
        assert any(f.rule == "D002" for f in check_determinism(project))

    def test_rng_home_is_exempt(self):
        module = parse_source(
            "import numpy as np\n"
            "def ensure(seed):\n"
            "    return np.random.default_rng(seed)\n",
            "src/repro/utils/rng.py",
            "library",
        )
        assert list(check_determinism(Project([module]))) == []


class TestWireChecker:
    def project(self):
        return Project(
            [load_fixture("bad_wire.py", "src/repro/service/fix.py", "library")]
        )

    def test_expected_findings(self):
        found = rules_by_line(check_wire(self.project()))
        assert ("W001", 7) in found  # import struct
        assert ("W002", 9) in found  # MAGIC redefinition
        assert ("W002", 10) in found  # WIRE_VERSION redefinition
        assert ("W001", 12) in found and ("W002", 12) in found  # "<4sHHi"
        assert ("W001", 16) in found and ("W002", 16) in found  # "<Q"
        assert ("W002", 19) in found  # WIRE_CODEC_* redefinition

    def test_wire_rules_are_library_only(self):
        module = load_fixture("bad_wire.py", "examples/fix.py", "examples")
        result = lint_project(project=Project([module]), baseline=None)
        assert not any(f.rule.startswith("W") for f in result.new)

    def test_wire_module_itself_is_exempt(self):
        wire_source = (
            REPO_ROOT / "src" / "repro" / "service" / "wire.py"
        ).read_text(encoding="utf-8")
        module = parse_source(
            wire_source, "src/repro/service/wire.py", "library"
        )
        assert list(check_wire(Project([module]))) == []


class TestRaisingChecker:
    def project(self):
        return Project(
            [load_fixture("bad_raising.py", "src/repro/fix_raise.py", "library")]
        )

    def test_expected_findings(self):
        found = rules_by_line(check_raising(self.project()))
        assert ("E001", 10) in found  # raise ValueError
        assert ("E002", 15) in found  # unguarded payload["kind"]

    def test_exemptions_hold(self):
        found = rules_by_line(check_raising(self.project()))
        lines = {line for _, line in found}
        assert 20 not in lines  # guarded subscript
        assert 22 not in lines  # NotImplementedError allowed
        assert 27 not in lines  # AttributeError in __getattr__


class TestRobustnessChecker:
    def project(self, relpath="src/repro/service/fix_rob.py"):
        return Project(
            [load_fixture("bad_robustness.py", relpath, "library")]
        )

    def test_expected_findings(self):
        found = rules_by_line(check_robustness(self.project()))
        assert ("R001", 11) in found  # except OSError: pass
        assert ("R001", 18) in found  # except (...): ...
        assert ("R001", 25) in found  # bare except: pass
        assert len(found) == 3

    def test_handlers_doing_work_are_clean(self):
        lines = {line for _, line in rules_by_line(
            check_robustness(self.project())
        )}
        assert 32 not in lines  # logged handler
        assert 39 not in lines  # counting handler (pass after real work)

    def test_rule_guards_the_serving_tier_only(self):
        outside = self.project(relpath="src/repro/core/fix_rob.py")
        assert list(check_robustness(outside)) == []


class TestGoodFixture:
    def test_exemplar_is_clean(self):
        module = load_fixture(
            "good_service.py", "src/repro/fix_good.py", "library"
        )
        result = lint_project(project=Project([module]), baseline=None)
        assert result.new == []
        assert result.suppressed == 1  # the justified ppdm: ignore[L002]


# ---------------------------------------------------------------------------
# runner semantics
# ---------------------------------------------------------------------------


class TestRunner:
    def test_undeclared_rule_is_rejected(self):
        reg = CheckerRegistry()

        @checker("rogue", rules=(RuleSpec("X001", "x"),), registry=reg)
        def check_rogue(project):
            yield Finding(
                rule="Y999", path="src/repro/x.py", line=1, message="boom"
            )

        module = parse_source("x = 1\n", "src/repro/x.py", "library")
        with pytest.raises(AnalysisError, match="undeclared rule"):
            run_checkers(Project([module]), registry=reg)

    def test_digests_attached_and_sorted(self):
        project = Project(
            [
                load_fixture(
                    "bad_raising.py", "src/repro/fix_raise.py", "library"
                )
            ]
        )
        findings, _ = run_checkers(project)
        assert findings == sorted(findings, key=Finding.sort_key)
        assert all(len(f.digest) == 12 for f in findings)

    def test_write_baseline_then_clean(self, tmp_path):
        project = Project(
            [
                load_fixture(
                    "bad_determinism.py", "src/repro/fix_det.py", "library"
                )
            ]
        )
        baseline = tmp_path / "baseline.txt"
        dirty = lint_project(project=project, baseline=baseline)
        assert not dirty.ok and dirty.new
        write_baseline(dirty, baseline)
        clean = lint_project(project=project, baseline=baseline)
        assert clean.ok
        assert len(clean.baselined) == len(dirty.new)

    def test_rule_subset_ignores_other_rules_baseline_entries(self, tmp_path):
        """A --rule subset run must not report unselected-rule entries stale."""
        project = Project(
            [
                load_fixture(
                    "bad_determinism.py", "src/repro/fix_det.py", "library"
                )
            ]
        )
        baseline = tmp_path / "baseline.txt"
        write_baseline(lint_project(project=project, baseline=baseline), baseline)
        subset = lint_project(
            project=project, baseline=baseline, rules=["L001"]
        )
        assert subset.stale == []
        assert subset.ok

    def test_render_text_and_json_agree(self):
        project = Project(
            [
                load_fixture(
                    "bad_raising.py", "src/repro/fix_raise.py", "library"
                )
            ]
        )
        result = lint_project(project=project, baseline=None)
        text = render_text(result)
        payload = json.loads(render_json(result))
        assert "lint: FAIL" in text
        assert payload["ok"] is False
        assert payload["counts"]["new"] == len(result.new)
        assert {f["rule"] for f in payload["new"]} == {
            f.rule for f in result.new
        }


# ---------------------------------------------------------------------------
# the real tree: self-check and the moved-mutation acceptance test
# ---------------------------------------------------------------------------


class TestRealTree:
    def test_lint_matches_committed_baseline(self):
        result = lint_project(root=REPO_ROOT)
        assert result.stale == [], (
            "baseline lists findings that no longer occur — the ratchet "
            "only shrinks; remove these lines from tools/lint_baseline.txt: "
            f"{result.stale}"
        )
        assert result.new == [], (
            "new lint findings — fix them or (for deliberate violations) "
            "suppress inline with '# ppdm: ignore[RULE]':\n"
            + "\n".join(f"{f.location} {f.rule} {f.message}" for f in result.new)
        )

    def test_baseline_file_is_committed_and_parseable(self):
        path = REPO_ROOT / DEFAULT_BASELINE
        assert path.is_file()
        accepted = load_baseline(path)
        assert sum(accepted.values()) == len(
            lint_project(root=REPO_ROOT).baselined
        )

    def test_moving_guarded_mutation_out_of_lock_is_caught(self):
        """The acceptance criterion: un-lock a shards.py mutation."""
        shards_path = "src/repro/service/shards.py"
        project = walk_project(REPO_ROOT)
        original = project.module(shards_path)
        assert original is not None
        guarded = (
            "        with stripe.lock:\n"
            "            stripe.counts += binned\n"
            "            stripe.seen += prepared.seen\n"
        )
        moved = (
            "        with stripe.lock:\n"
            "            stripe.seen += prepared.seen\n"
            "        stripe.counts += binned\n"
        )
        assert original.source.count(guarded) == 1
        patched = parse_source(
            original.source.replace(guarded, moved), shards_path, "library"
        )
        modules = [
            patched if m.relpath == shards_path else m for m in project.modules
        ]
        races = [
            f
            for f in check_locks(Project(modules, root=project.root))
            if f.rule == "L001" and f.path == shards_path
        ]
        assert races, "moved guarded mutation was not flagged by L001"
        assert any("'counts'" in f.message for f in races)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCLI:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["lint", "--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0
        assert "lint: OK" in out

    def test_empty_baseline_fails_with_findings(self, tmp_path, capsys):
        code = main(
            [
                "lint",
                "--root",
                str(REPO_ROOT),
                "--baseline",
                str(tmp_path / "empty.txt"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "lint: FAIL" in out
        assert "E002" in out

    def test_json_format(self, capsys):
        code = main(["lint", "--root", str(REPO_ROOT), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["counts"]["new"] == 0

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in ("L001", "D002", "W001", "E002"):
            assert rule_id in out

    def test_unknown_rule_is_a_clean_error(self, capsys):
        code = main(["lint", "--root", str(REPO_ROOT), "--rule", "Z999"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown rule id" in err

    def test_rule_subset_run_is_clean(self, capsys):
        code = main(["lint", "--root", str(REPO_ROOT), "--rule", "L001"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lint: OK" in out

    def test_write_baseline_rejects_rule_subset(self, capsys):
        code = main(
            [
                "lint",
                "--root",
                str(REPO_ROOT),
                "--rule",
                "L001",
                "--write-baseline",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "--write-baseline cannot be combined with --rule" in err

    def test_write_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        code = main(
            [
                "lint",
                "--root",
                str(REPO_ROOT),
                "--baseline",
                str(baseline),
                "--write-baseline",
            ]
        )
        assert code == 0
        assert baseline.is_file()
        capsys.readouterr()
        code = main(
            ["lint", "--root", str(REPO_ROOT), "--baseline", str(baseline)]
        )
        assert code == 0
        assert "lint: OK" in capsys.readouterr().out
