"""Tests for attribute metadata and the Table container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.schema import Attribute, Table
from repro.exceptions import SchemaError, ValidationError


@pytest.fixture
def tiny_table():
    schema = (Attribute("a", 0, 10), Attribute("b", 0, 4, discrete=True))
    columns = {"a": [1.0, 5.0, 9.0, 2.0], "b": [0, 1, 4, 2]}
    return Table(columns, [0, 1, 0, 1], schema)


class TestAttribute:
    def test_span(self):
        assert Attribute("x", 20, 80).span == 60

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            Attribute("x", 10, 10)
        with pytest.raises(ValidationError):
            Attribute("x", 10, 5)

    def test_rejects_infinite_bounds(self):
        with pytest.raises(ValidationError):
            Attribute("x", 0, float("inf"))

    def test_continuous_partition(self):
        part = Attribute("x", 0, 10).partition(5)
        assert part.n_intervals == 5
        assert part.low == 0 and part.high == 10

    def test_discrete_partition_caps_intervals(self):
        attr = Attribute("elevel", 0, 4, discrete=True)
        part = attr.partition(25)
        assert part.n_intervals == 5  # one per value
        # integer values sit at interval midpoints
        np.testing.assert_allclose(part.midpoints, [0, 1, 2, 3, 4])

    def test_discrete_partition_smaller_request(self):
        attr = Attribute("hyears", 1, 30, discrete=True)
        part = attr.partition(10)
        assert part.n_intervals == 10


class TestTable:
    def test_basic_properties(self, tiny_table):
        assert tiny_table.n_records == 4
        assert tiny_table.attribute_names == ("a", "b")
        assert tiny_table.n_classes == 2
        assert len(tiny_table) == 4

    def test_column_access(self, tiny_table):
        np.testing.assert_allclose(tiny_table.column("a"), [1, 5, 9, 2])

    def test_unknown_column_rejected(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.column("z")

    def test_attribute_lookup(self, tiny_table):
        assert tiny_table.attribute("b").discrete

    def test_unknown_attribute_rejected(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.attribute("z")

    def test_matrix_order(self, tiny_table):
        matrix = tiny_table.matrix()
        assert matrix.shape == (4, 2)
        np.testing.assert_allclose(matrix[:, 0], [1, 5, 9, 2])

    def test_subset_by_mask(self, tiny_table):
        sub = tiny_table.subset(tiny_table.labels == 1)
        assert sub.n_records == 2
        np.testing.assert_allclose(sub.column("a"), [5, 2])

    def test_subset_by_indices(self, tiny_table):
        sub = tiny_table.subset(np.array([2, 0]))
        np.testing.assert_allclose(sub.column("a"), [9, 1])

    def test_subset_is_copy(self, tiny_table):
        sub = tiny_table.subset(np.array([0]))
        sub.column("a")[0] = 99
        assert tiny_table.column("a")[0] == 1

    def test_with_columns(self, tiny_table):
        replaced = tiny_table.with_columns({"a": [0.0, 0.0, 0.0, 0.0]})
        assert replaced.column("a").sum() == 0
        assert tiny_table.column("a").sum() == 17  # original untouched

    def test_with_columns_unknown_rejected(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.with_columns({"z": [1, 2, 3, 4]})

    def test_class_split(self, tiny_table):
        parts = tiny_table.class_split()
        assert set(parts) == {0, 1}
        assert parts[0].n_records == 2
        assert np.all(parts[1].labels == 1)

    def test_mismatched_schema_rejected(self):
        with pytest.raises(SchemaError):
            Table({"a": [1.0]}, [0], (Attribute("b", 0, 1),))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table({"a": [1.0, 2.0]}, [0], (Attribute("a", 0, 1),))

    def test_2d_labels_rejected(self):
        with pytest.raises(SchemaError):
            Table({"a": [1.0]}, [[0]], (Attribute("a", 0, 1),))

    def test_empty_table_n_classes(self):
        table = Table({"a": []}, [], (Attribute("a", 0, 1),))
        assert table.n_classes == 0
