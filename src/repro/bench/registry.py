"""Declarative experiment registry for the benchmark harness.

Every paper experiment lives in ``benchmarks/bench_e*.py`` as a plain
function decorated with :func:`experiment`:

.. code-block:: python

    @experiment("e19", title="Engine batching", tags=("engine", "smoke"),
                seed=7)
    def run_e19(ctx):
        ...
        return {"speedup": speedup}

Importing the module registers the experiment; :func:`discover` imports
every ``bench_e*.py`` under a benchmarks directory in a deterministic
(naturally sorted) order so registry iteration — and therefore runner
scheduling and artifact ordering — never depends on filesystem order.

The registered function takes one argument, an
:class:`~repro.bench.runner.ExperimentContext`, and returns a flat dict
of JSON-scalar metrics; the runner turns that into a schema-versioned
``BENCH_<id>.json`` artifact (:mod:`repro.bench.artifacts`).
"""

from __future__ import annotations

import re
import sys
import zlib
from dataclasses import dataclass
from importlib import util as importlib_util
from pathlib import Path
from typing import Callable

from repro.exceptions import BenchmarkError

__all__ = [
    "Experiment",
    "ExperimentRegistry",
    "REGISTRY",
    "experiment",
    "discover",
    "default_benchmarks_dir",
]

#: file pattern discovered under the benchmarks directory
BENCH_GLOB = "bench_*.py"

_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def _natural_key(text: str) -> tuple:
    """Sort key ordering embedded integers numerically (e2 < e10)."""
    return tuple(
        int(part) if part.isdigit() else part
        for part in re.split(r"(\d+)", text)
    )


def _definition_site(fn: Callable):
    """Where ``fn`` was defined: ``(resolved file, first line, name)``.

    The same benchmark file can legitimately be imported twice under two
    module names — once by pytest (as ``bench_e5_...``) and once by
    :func:`discover` (as ``repro_bench_...``).  The definition site
    identifies the re-registration as the same experiment rather than a
    genuine id collision.
    """
    code = getattr(fn, "__code__", None)
    if code is None:  # pragma: no cover - exotic callables
        return None
    try:
        filename = str(Path(code.co_filename).resolve())
    except OSError:  # pragma: no cover - defensive
        filename = code.co_filename
    return (filename, code.co_firstlineno, getattr(fn, "__name__", ""))


@dataclass(frozen=True)
class Experiment:
    """One registered benchmark experiment.

    Attributes
    ----------
    id:
        Unique short identifier (``"e1"`` … ``"e19_local"``).
    fn:
        The experiment body: ``fn(ctx) -> dict`` of metrics.
    title:
        One-line human description shown by ``ppdm bench list``.
    tags:
        Free-form labels used for selection (``--tags smoke``).
    seed:
        Canonical seed reproducing the committed reference tables; the
        runner derives per-experiment seeds from ``--seed`` when one is
        given, and falls back to this otherwise.
    module:
        Name of the module that registered the experiment.
    """

    id: str
    fn: Callable
    title: str = ""
    tags: tuple = ()
    seed: int = 7
    module: str = ""


class ExperimentRegistry:
    """Id-keyed collection of :class:`Experiment` specs.

    Registration rejects duplicate ids outright — two modules silently
    fighting over ``"e5"`` would make every artifact ambiguous — and
    iteration is always naturally sorted by id, independent of
    registration order.
    """

    def __init__(self) -> None:
        self._specs: dict = {}

    def register(self, spec: Experiment) -> None:
        if not _ID_PATTERN.match(spec.id):
            raise BenchmarkError(
                f"invalid experiment id {spec.id!r}: ids are alphanumeric "
                "plus '_', '.', '-'"
            )
        if spec.id in self._specs:
            other = self._specs[spec.id]
            site = _definition_site(spec.fn)
            if site is not None and site == _definition_site(other.fn):
                # the same file re-imported under another module name
                self._specs[spec.id] = spec
                return
            raise BenchmarkError(
                f"duplicate experiment id {spec.id!r}: already registered "
                f"by module {other.module!r}"
            )
        self._specs[spec.id] = spec

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def ids(self) -> tuple:
        """All registered ids, naturally sorted (e2 before e10)."""
        return tuple(sorted(self._specs, key=_natural_key))

    def get(self, experiment_id: str) -> Experiment:
        try:
            return self._specs[experiment_id]
        except KeyError:
            known = ", ".join(self.ids()) or "<none>"
            raise BenchmarkError(
                f"unknown experiment id {experiment_id!r}; registered: {known}"
            ) from None

    def select(self, ids=None, tags=None) -> tuple:
        """Experiments matching the requested ids and/or tags.

        ``ids`` picks experiments explicitly (unknown ids raise).
        ``tags`` keeps experiments carrying *any* of the given tags.
        Both ``None`` selects everything.  The result is naturally
        sorted by id.
        """
        if ids is not None:
            selected = [self.get(i) for i in ids]
        else:
            selected = [self._specs[i] for i in self.ids()]
        if tags is not None:
            wanted = set(tags)
            unknown = wanted - {t for s in self._specs.values() for t in s.tags}
            if unknown:
                raise BenchmarkError(
                    f"unknown tags {sorted(unknown)}; known tags: "
                    f"{sorted({t for s in self._specs.values() for t in s.tags})}"
                )
            selected = [s for s in selected if wanted & set(s.tags)]
        return tuple(sorted(selected, key=lambda s: _natural_key(s.id)))

    def clear(self) -> None:
        """Forget every registration (test isolation helper)."""
        self._specs.clear()


#: process-global registry the :func:`experiment` decorator writes to
REGISTRY = ExperimentRegistry()


def experiment(
    experiment_id: str,
    *,
    title: str = "",
    tags: tuple = (),
    seed: int = 7,
    registry: ExperimentRegistry = None,
) -> Callable:
    """Register the decorated function as a benchmark experiment.

    The function keeps working as a plain callable (the pytest wrappers
    call it directly); registration only adds it to ``registry``
    (default: the process-global :data:`REGISTRY`).
    """
    target = REGISTRY if registry is None else registry

    def decorate(fn: Callable) -> Callable:
        spec = Experiment(
            id=experiment_id,
            fn=fn,
            title=title,
            tags=tuple(tags),
            seed=seed,
            module=getattr(fn, "__module__", ""),
        )
        target.register(spec)
        fn.experiment = spec
        return fn

    return decorate


def default_benchmarks_dir() -> Path:
    """Locate the ``benchmarks/`` directory.

    Prefers ``./benchmarks`` relative to the working directory (the
    normal CLI invocation from the repo root), falling back to the
    checkout the package itself lives in.
    """
    cwd_candidate = Path.cwd() / "benchmarks"
    if cwd_candidate.is_dir():
        return cwd_candidate
    repo_candidate = Path(__file__).resolve().parents[3] / "benchmarks"
    if repo_candidate.is_dir():
        return repo_candidate
    raise BenchmarkError(
        "cannot locate a benchmarks/ directory; run from the repository "
        "root or pass --benchmarks-dir"
    )


#: absolute paths already imported by :func:`discover`
_DISCOVERED: dict = {}


def discover(benchmarks_dir=None, *, registry: ExperimentRegistry = None) -> tuple:
    """Import every ``bench_*.py`` module and return the discovered ids.

    Modules are imported in natural filename order, so registration —
    and everything downstream of it — is deterministic.  Re-discovering
    the same directory is a no-op for already-imported files, which
    makes the function safe to call from process-pool initializers.

    ``registry`` only scopes the *returned* ids; the modules register
    into whatever registry their decorators reference (the global one
    for the real benchmarks).
    """
    root = Path(benchmarks_dir) if benchmarks_dir else default_benchmarks_dir()
    if not root.is_dir():
        raise BenchmarkError(f"benchmarks directory {str(root)!r} does not exist")
    target = REGISTRY if registry is None else registry

    # Bench modules `from _common import ...`; satisfying that through
    # sys.modules (instead of a sys.path prepend) keeps discovery from
    # changing import resolution for the rest of the process.
    _load_module("_common", root / "_common.py", required=False)

    imported_by_file = None
    for path in sorted(root.glob(BENCH_GLOB), key=lambda p: _natural_key(p.name)):
        resolved = str(path.resolve())
        module = sys.modules.get(_DISCOVERED.get(resolved, ""))
        if module is None:
            if imported_by_file is None:
                imported_by_file = _imported_modules_by_file()
            module = imported_by_file.get(resolved)
        if module is None:
            # the digest keeps same-stem files from different directories
            # (test fixtures, multiple checkouts) apart in sys.modules
            digest = zlib.crc32(resolved.encode())
            module_name = f"repro_bench_{path.stem}_{digest:08x}"
            module = _load_module(module_name, path)
            _DISCOVERED[resolved] = module_name
        else:
            # file already executed (a prior discover, or pytest under its
            # bare stem): don't re-run it, but do re-register anything a
            # REGISTRY.clear() dropped
            _register_missing(module, target)
    return target.ids()


def _load_module(module_name: str, path: Path, *, required: bool = True):
    """Import ``path`` as ``module_name`` unless that name is taken."""
    if module_name in sys.modules:
        return sys.modules[module_name]
    if not path.is_file():
        if required:  # pragma: no cover - glob only yields existing files
            raise BenchmarkError(f"cannot import benchmark module {str(path)!r}")
        return None
    spec = importlib_util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise BenchmarkError(f"cannot import benchmark module {str(path)!r}")
    module = importlib_util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


def _imported_modules_by_file() -> dict:
    """Map of resolved source path -> already-imported module.

    pytest imports benchmark files under their bare stem; discovery must
    not execute such a file a second time, only reuse its registrations.
    """
    by_file = {}
    for module in list(sys.modules.values()):
        filename = getattr(module, "__file__", None)
        if not filename:
            continue
        try:
            by_file[str(Path(filename).resolve())] = module
        except OSError:  # pragma: no cover - defensive
            continue
    return by_file


def _register_missing(module, target: ExperimentRegistry) -> None:
    """Re-register a module's experiments that ``target`` has forgotten.

    Import-time decorators are the primary registration path; this walk
    only repairs the registry after an explicit ``clear()``.
    """
    for value in vars(module).values():
        spec = getattr(value, "experiment", None)
        if isinstance(spec, Experiment) and spec.id not in target:
            target.register(spec)
