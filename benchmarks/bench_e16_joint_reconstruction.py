"""E16 — Extension: joint reconstruction recovers intra-class correlation.

EXPERIMENTS.md's E5 delta notes that per-attribute reconstruction (the
paper's design) preserves marginals but dilutes intra-class correlation.
This bench quantifies that and shows the 2-D joint reconstructor
recovering it: for correlated pairs, the correlation of (a) the raw
randomized values is attenuated, (b) the per-attribute product estimate
is zero by construction, and (c) the joint estimate tracks the truth.
"""

from __future__ import annotations

import numpy as np
from _common import experiment, run_experiment

from repro.core import UniformRandomizer
from repro.core.joint import JointBayesReconstructor
from repro.core.partition import Partition
from repro.experiments import format_table
from repro.utils.rng import ensure_rng

RHOS = (0.0, 0.4, 0.8)


def _sample(n, rho, rng):
    z1 = rng.normal(size=n)
    z2 = rho * z1 + np.sqrt(1 - rho**2) * rng.normal(size=n)

    def clip(z):
        return np.clip((z + 3) / 6, 0, 1)

    return clip(z1), clip(z2)


@experiment(
    "e16",
    title="Joint reconstruction recovers intra-class correlation",
    tags=("joint", "reconstruction", "smoke"),
    seed=1600,
)
def run_e16(ctx):
    n = ctx.scaled(10_000)
    ctx.record(n=n, privacy=0.5, n_intervals=15)
    part = Partition.uniform(0, 1, 15)
    noise = UniformRandomizer.from_privacy(0.5, 1.0)
    rng = ensure_rng(ctx.seed)
    rows = []
    for rho in RHOS:
        x1, x2 = _sample(n, rho, rng)
        w1 = noise.randomize(x1, seed=rng)
        w2 = noise.randomize(x2, seed=rng)
        true_corr = float(np.corrcoef(x1, x2)[0, 1])
        noisy_corr = float(np.corrcoef(w1, w2)[0, 1])
        joint = JointBayesReconstructor().reconstruct(
            w1, w2, (part, part), (noise, noise)
        )
        rows.append(
            {
                "rho": rho,
                "true": true_corr,
                "randomized": noisy_corr,
                "joint": joint.correlation(),
                "iterations": joint.n_iterations,
            }
        )

    table = format_table(
        (
            "target rho",
            "true corr",
            "randomized corr",
            "joint recon corr",
            "product recon corr",
            "sweeps",
        ),
        [
            (
                f"{r['rho']:g}",
                f"{r['true']:.3f}",
                f"{r['randomized']:.3f}",
                f"{r['joint']:.3f}",
                "0.000 (by construction)",
                r["iterations"],
            )
            for r in rows
        ],
        title="E16: correlation through randomization and reconstruction "
        "(uniform noise, 50% privacy)",
    )
    ctx.report(table, name="e16_joint_reconstruction")

    metrics = {}
    for r in rows:
        slug = f"rho{r['rho']:g}".replace(".", "_")
        metrics[f"true_corr_{slug}"] = r["true"]
        metrics[f"randomized_corr_{slug}"] = r["randomized"]
        metrics[f"joint_corr_{slug}"] = float(r["joint"])

    for r in rows:
        if r["rho"] == 0.0:
            assert abs(r["joint"]) < 0.1
        else:
            # noise attenuates the observable correlation ...
            assert r["randomized"] < r["true"] - 0.05
            # ... joint reconstruction recovers most of it
            assert r["joint"] > r["randomized"]
            assert abs(r["joint"] - r["true"]) < 0.2
    return metrics


def test_e16_joint_reconstruction(benchmark):
    run_experiment(benchmark, "e16")
