"""Tests for the sharded aggregation service (repro.service)."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import (
    GaussianRandomizer,
    KernelCache,
    NullRandomizer,
    Partition,
    StreamingReconstructor,
    UniformRandomizer,
)
from repro.datasets import shapes
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.service import (
    AggregationService,
    AttributeSpec,
    ColumnLayout,
    HistogramShard,
    ShardSet,
    decode_columns,
    encode_columns,
    service_from_spec,
)


@pytest.fixture
def noise():
    return UniformRandomizer(half_width=0.2)


@pytest.fixture
def part():
    return Partition.uniform(0.0, 1.0, 12)


@pytest.fixture
def spec(part, noise):
    return AttributeSpec("x", part, noise)


def _disclose(noise, n, seed):
    density = shapes.plateau()
    return noise.randomize(density.sample(n, seed=seed), seed=seed + 1)


class TestAttributeSpec:
    def test_rejects_empty_name(self, part, noise):
        with pytest.raises(ValidationError):
            AttributeSpec("", part, noise)

    def test_rejects_non_partition(self, noise):
        with pytest.raises(ValidationError):
            AttributeSpec("x", [0.0, 1.0], noise)

    def test_rejects_non_additive_randomizer(self, part):
        with pytest.raises(ValidationError):
            AttributeSpec("x", part, NullRandomizer())


class TestHistogramShard:
    def test_ingest_counts(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shard = HistogramShard({"x": y_part})
        added = shard.ingest({"x": [0.1, 0.5, 0.9]})
        assert added == 3
        assert shard.n_seen("x") == 3
        counts, seen = shard.partial("x")
        assert counts.sum() == 3
        assert seen == 3

    def test_empty_batches_are_fine(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shard = HistogramShard({"x": y_part})
        assert shard.ingest({"x": []}) == 0
        assert shard.n_seen("x") == 0

    def test_unknown_attribute_rejected(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shard = HistogramShard({"x": y_part})
        with pytest.raises(ValidationError):
            shard.ingest({"nope": [0.5]})
        with pytest.raises(ValidationError):
            shard.n_seen("nope")

    def test_needs_at_least_one_attribute(self):
        with pytest.raises(ValidationError):
            HistogramShard({})

    def test_merge_from(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        a = HistogramShard({"x": y_part})
        b = HistogramShard({"x": y_part})
        a.ingest({"x": [0.1, 0.2]})
        b.ingest({"x": [0.8]})
        a.merge_from(b)
        assert a.n_seen("x") == 3
        assert b.n_seen("x") == 1  # source untouched

    def test_merge_from_rejects_different_schema(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        a = HistogramShard({"x": y_part})
        b = HistogramShard({"y": y_part})
        with pytest.raises(ValidationError):
            a.merge_from(b)

    def test_merge_from_rejects_different_grid(self, part, noise):
        a = HistogramShard({"x": part.expanded(noise.support_half_width())})
        b = HistogramShard({"x": Partition.uniform(-1, 2, 7)})
        with pytest.raises(ValidationError):
            a.merge_from(b)


class TestShardSet:
    def test_round_robin_routing(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shards = ShardSet({"x": y_part}, n_shards=3)
        for _ in range(6):
            shards.ingest({"x": [0.5]})
        assert [shard.n_seen("x") for shard in shards] == [2, 2, 2]

    def test_explicit_shard_pinning(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shards = ShardSet({"x": y_part}, n_shards=2)
        shards.ingest({"x": [0.5, 0.6]}, shard=1)
        assert shards.shard(0).n_seen("x") == 0
        assert shards.shard(1).n_seen("x") == 2

    def test_shard_index_validated(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shards = ShardSet({"x": y_part}, n_shards=2)
        with pytest.raises(ValidationError):
            shards.shard(2)
        with pytest.raises(ValidationError):
            shards.ingest({"x": [0.5]}, shard=-1)

    def test_rejects_bad_shard_count(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        with pytest.raises(ValidationError):
            ShardSet({"x": y_part}, n_shards=0)

    def test_merged_equals_single_histogram(self, part, noise):
        """The acceptance contract at the histogram level: merged shard
        partials are bit-identical to one histogram of the whole stream."""
        y_part = part.expanded(noise.support_half_width())
        w = _disclose(noise, 5_000, seed=3)
        expected = y_part.histogram(w).astype(float)
        for n_shards in (1, 2, 4, 8):
            shards = ShardSet({"x": y_part}, n_shards=n_shards)
            for chunk in np.array_split(w, 17):
                shards.ingest({"x": chunk})
            counts, seen = shards.merged("x")
            assert np.array_equal(counts, expected)
            assert seen == w.size

    def test_unknown_attribute(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shards = ShardSet({"x": y_part}, n_shards=2)
        with pytest.raises(ValidationError):
            shards.merged("nope")

    def test_clear(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shards = ShardSet({"x": y_part}, n_shards=2)
        shards.ingest({"x": [0.5]})
        shards.clear()
        assert shards.n_seen("x") == 0


class TestPreparedFastPath:
    """The zero-copy ingest path: prepare() + ingest_prepared()."""

    def test_prepare_then_ingest_matches_ingest(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        w = _disclose(noise, 2_000, seed=40)
        plain = HistogramShard({"x": y_part})
        fast = HistogramShard({"x": y_part})
        plain.ingest({"x": w})
        assert fast.ingest_prepared(fast.prepare({"x": w})) == w.size
        a, seen_a = plain.partial("x")
        b, seen_b = fast.partial("x")
        assert np.array_equal(a, b)
        assert seen_a == seen_b == w.size

    def test_fused_multi_attribute_bincount(self, noise):
        """One prepared batch bins every attribute; per-attribute partials
        match bucketing each attribute separately."""
        parts = {
            "a": Partition.uniform(0, 1, 6),
            "b": Partition.uniform(-2, 2, 9),
        }
        shard = HistogramShard(parts)
        rng = np.random.default_rng(8)
        batch = {"a": rng.uniform(0, 1, 500), "b": rng.uniform(-2, 2, 700)}
        assert shard.ingest_prepared(shard.prepare(batch)) == 1200
        for name, partition in parts.items():
            counts, seen = shard.partial(name)
            assert np.array_equal(counts, partition.histogram(batch[name]))
            assert seen == batch[name].size

    def test_prepared_batch_reusable_across_shards(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shards = ShardSet({"x": y_part}, n_shards=2)
        prepared = shards.prepare({"x": [0.1, 0.9]})
        shards.ingest_prepared(prepared, shard=0)
        shards.ingest_prepared(prepared, shard=1)
        assert shards.n_seen("x") == 4

    def test_prepare_validates_like_ingest(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shard = HistogramShard({"x": y_part})
        with pytest.raises(ValidationError):
            shard.prepare({"nope": [0.5]})
        with pytest.raises(ValidationError):
            shard.prepare({"x": [float("nan")]})
        with pytest.raises(ValidationError):
            shard.prepare({"x": [[0.5]]})
        with pytest.raises(ValidationError):
            shard.prepare([("x", [0.5])])

    def test_ingest_prepared_rejects_foreign_layout(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shard = HistogramShard({"x": y_part})
        other = ColumnLayout({"x": Partition.uniform(-9, 9, 5)})
        with pytest.raises(ValidationError):
            shard.ingest_prepared(other.prepare({"x": [0.5]}))
        with pytest.raises(ValidationError):
            shard.ingest_prepared({"x": [0.5]})

    def test_equal_layouts_are_compatible(self, part, noise):
        """Two services over the same schema can exchange prepared batches."""
        y_part = part.expanded(noise.support_half_width())
        a = HistogramShard({"x": y_part})
        b = HistogramShard({"x": y_part})
        assert b.ingest_prepared(a.prepare({"x": [0.5]})) == 1

    def test_decoded_readonly_columns_ingest_fine(self, part, noise):
        """Wire-decoded columns are read-only frombuffer views; the fast
        path must consume them without copying or writing."""
        w = _disclose(noise, 1_000, seed=41)
        batch, _ = decode_columns(encode_columns({"x": w}))
        assert not batch["x"].flags.writeable
        service = AggregationService([AttributeSpec("x", part, noise)])
        assert service.ingest_prepared(service.prepare(batch)) == w.size
        reference = AggregationService([AttributeSpec("x", part, noise)])
        reference.ingest({"x": w})
        assert np.array_equal(
            service.estimate("x").distribution.probs,
            reference.estimate("x").distribution.probs,
        )

    def test_empty_prepared_batch(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shard = HistogramShard({"x": y_part})
        assert shard.ingest_prepared(shard.prepare({})) == 0
        assert shard.ingest_prepared(shard.prepare({"x": []})) == 0


class TestQuantizedColumns:
    """Client-side quantization: int8/int16 bin indices through prepare()."""

    def test_quantize_width_follows_grid_size(self, part, noise):
        service = AggregationService([AttributeSpec("x", part, noise)])
        w = _disclose(noise, 100, seed=50)
        indices = service.quantize({"x": w})
        assert indices["x"].dtype == np.dtype("int8")
        big = ColumnLayout({"x": Partition.uniform(0, 1, 300)})
        assert big.quantize({"x": [0.5]})["x"].dtype == np.dtype("int16")

    def test_quantized_prepare_matches_float_prepare(self, part, noise):
        service = AggregationService([AttributeSpec("x", part, noise)])
        reference = AggregationService([AttributeSpec("x", part, noise)])
        w = _disclose(noise, 2_000, seed=51)
        reference.ingest({"x": w})
        indices = service.quantize({"x": w})
        service.ingest_prepared(service.prepare(indices))
        a = service.estimate("x")
        b = reference.estimate("x")
        assert np.array_equal(a.distribution.probs, b.distribution.probs)
        assert a.n_iterations == b.n_iterations

    def test_wire_roundtripped_indices_stay_bit_identical(self, part, noise):
        """quantize -> encode_quantized -> decode -> prepare: the full
        client->server path lands in the same accumulators."""
        from repro.service import encode_quantized
        from repro.service.wire import iter_labeled_frames

        service = AggregationService(
            [AttributeSpec("x", part, noise)], n_shards=4
        )
        reference = AggregationService([AttributeSpec("x", part, noise)])
        w = _disclose(noise, 3_000, seed=52)
        reference.ingest({"x": w})
        body = encode_quantized(service.quantize({"x": w}))
        for batch, _, shard in iter_labeled_frames(body):
            service.ingest_prepared(service.prepare(batch), shard=shard)
        assert np.array_equal(
            service.estimate("x").distribution.probs,
            reference.estimate("x").distribution.probs,
        )

    def test_out_of_grid_indices_rejected(self, part, noise):
        service = AggregationService([AttributeSpec("x", part, noise)])
        with pytest.raises(ValidationError, match="bin indices"):
            service.prepare({"x": np.array([0, 120], dtype=np.int8)})
        with pytest.raises(ValidationError, match="bin indices"):
            service.prepare({"x": np.array([-1], dtype=np.int8)})

    def test_quantize_clips_like_float_ingest(self, part, noise):
        """locate() clips out-of-domain disclosures to the edge bins; the
        quantized path inherits exactly that behaviour."""
        service = AggregationService([AttributeSpec("x", part, noise)])
        reference = AggregationService([AttributeSpec("x", part, noise)])
        outliers = np.array([-99.0, 0.5, 99.0])
        reference.ingest({"x": outliers})
        service.ingest_prepared(
            service.prepare(service.quantize({"x": outliers}))
        )
        a, seen_a = service.shards.shard(0).partial("x")
        b, seen_b = reference.shards.shard(0).partial("x")
        assert np.array_equal(a, b) and seen_a == seen_b

    def test_quantized_2d_rejected(self, part, noise):
        service = AggregationService([AttributeSpec("x", part, noise)])
        with pytest.raises(ValidationError, match="1-dimensional"):
            service.prepare({"x": np.array([[1]], dtype=np.int8)})


class TestStripedAccumulators:
    def test_stripes_merge_to_exact_counts(self, part, noise):
        """Many writer threads -> many stripes; partial() is still the
        exact histogram of everything ingested."""
        y_part = part.expanded(noise.support_half_width())
        shard = HistogramShard({"x": y_part})
        w = _disclose(noise, 6_000, seed=42)
        chunks = np.array_split(w, 24)
        barrier = threading.Barrier(6)

        def worker(index):
            barrier.wait()
            for chunk in chunks[index::6]:
                shard.ingest({"x": chunk})

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(worker, range(6)))
        assert len(shard._stripes) >= 1  # striped, not a single buffer
        counts, seen = shard.partial("x")
        assert np.array_equal(counts, y_part.histogram(w))
        assert seen == w.size

    def test_clear_zeroes_every_stripe(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shard = HistogramShard({"x": y_part})
        shard.ingest({"x": [0.5]})

        def other_thread():
            shard.ingest({"x": [0.7, 0.8]})

        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
        assert shard.n_seen("x") == 3
        shard.clear()
        assert shard.n_seen("x") == 0
        counts, _ = shard.partial("x")
        assert counts.sum() == 0

    def test_merge_from_collects_all_stripes(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        a = HistogramShard({"x": y_part})
        b = HistogramShard({"x": y_part})

        def other_thread():
            b.ingest({"x": [0.2, 0.3]})

        b.ingest({"x": [0.1]})
        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
        a.merge_from(b)
        assert a.n_seen("x") == 3
        assert b.n_seen("x") == 3  # source untouched


class TestAggregationServiceBasics:
    def test_accepts_triples(self, part, noise):
        service = AggregationService([("x", part, noise)])
        assert service.attributes == ("x",)

    def test_rejects_duplicate_names(self, spec):
        with pytest.raises(ValidationError):
            AggregationService([spec, spec])

    def test_rejects_empty_schema(self):
        with pytest.raises(ValidationError):
            AggregationService([])

    def test_rejects_bad_config(self, spec):
        with pytest.raises(ValidationError):
            AggregationService([spec], stopping="sometimes")
        with pytest.raises(ValidationError):
            AggregationService([spec], max_iterations=0)

    def test_estimate_requires_data(self, spec):
        service = AggregationService([spec])
        with pytest.raises(ValidationError):
            service.estimate("x")
        with pytest.raises(ValidationError):
            service.estimate_all()

    def test_unknown_attribute(self, spec):
        service = AggregationService([spec])
        with pytest.raises(ValidationError):
            service.estimate("nope")
        with pytest.raises(ValidationError):
            service.ingest({"nope": [0.5]})
        with pytest.raises(ValidationError):
            service.n_seen("nope")
        with pytest.raises(ValidationError):
            service.spec("nope")

    def test_n_seen_shapes(self, spec, noise):
        service = AggregationService([spec], n_shards=2)
        service.ingest({"x": _disclose(noise, 100, seed=0)})
        assert service.n_seen("x") == 100
        assert service.n_seen() == {"x": 100}

    def test_reset(self, spec, noise):
        service = AggregationService([spec])
        service.ingest({"x": _disclose(noise, 500, seed=1)})
        service.estimate("x")
        service.reset()
        assert service.n_seen("x") == 0
        with pytest.raises(ValidationError):
            service.estimate("x")

    def test_one_kernel_cache_across_attributes(self, noise):
        """All attributes share the engine's cache: one miss per grid."""
        part_a = Partition.uniform(0, 1, 10)
        part_b = Partition.uniform(0, 1, 16)
        service = AggregationService(
            [
                AttributeSpec("a", part_a, noise),
                AttributeSpec("b", part_b, noise),
                AttributeSpec("c", part_a, noise),  # same grid as "a"
            ]
        )
        assert service.engine.kernel_cache.misses == 2
        assert service.engine.kernel_cache.hits == 1

    def test_shared_external_kernel_cache(self, part, noise, spec):
        cache = KernelCache()
        StreamingReconstructor(part, noise, kernel_cache=cache)
        AggregationService([spec], kernel_cache=cache)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_config_properties_live(self, spec):
        service = AggregationService([spec], max_iterations=100)
        assert service.max_iterations == 100
        service.tol = 1e-5
        assert service.tol == 1e-5
        with pytest.raises(ValidationError):
            service.stopping = "sometimes"

    def test_convergence_warning_propagates(self, spec, noise):
        service = AggregationService(
            [spec], stopping="delta", tol=1e-15, max_iterations=3
        )
        service.ingest({"x": _disclose(noise, 2_000, seed=5)})
        with pytest.warns(ConvergenceWarning):
            result = service.estimate("x")
        assert not result.converged
        assert result.n_iterations == 3

    def test_warn_false_suppresses_convergence_warning(self, spec, noise):
        """The HTTP front end reads converged from the result instead of
        toggling (process-global, thread-unsafe) warning filters."""
        import warnings

        service = AggregationService(
            [spec], stopping="delta", tol=1e-15, max_iterations=3
        )
        service.ingest({"x": _disclose(noise, 2_000, seed=5)})
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            result = service.estimate("x", warn=False)
        assert not result.converged


class TestSingleStreamParity:
    """The acceptance contract: merge + estimate is bit-identical to the
    single-stream StreamingReconstructor at any shard count."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_one_refresh_parity(self, part, noise, n_shards):
        w = _disclose(noise, 6_000, seed=11)
        stream = StreamingReconstructor(part, noise)
        service = AggregationService(
            [AttributeSpec("x", part, noise)], n_shards=n_shards
        )
        for chunk in np.array_split(w, 13):
            stream.update(chunk)
            service.ingest({"x": chunk})
        a = stream.estimate()
        b = service.estimate("x")
        assert np.array_equal(a.distribution.probs, b.distribution.probs)
        assert a.n_iterations == b.n_iterations
        assert a.converged == b.converged
        assert a.chi2_statistic == b.chi2_statistic
        assert a.delta_history == b.delta_history

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_refresh_trajectory_parity(self, part, noise, n_shards):
        """Warm-start trajectories match refresh for refresh."""
        stream = StreamingReconstructor(part, noise)
        service = AggregationService(
            [AttributeSpec("x", part, noise)], n_shards=n_shards
        )
        for day in range(5):
            w = _disclose(noise, 800, seed=100 + day)
            stream.update(w)
            service.ingest({"x": w})
            a = stream.estimate()
            b = service.estimate("x")
            assert np.array_equal(a.distribution.probs, b.distribution.probs)
            assert a.n_iterations == b.n_iterations

    def test_parity_with_gaussian_noise_and_many_attributes(self):
        gauss = GaussianRandomizer(sigma=0.15)
        uni = UniformRandomizer(half_width=0.3)
        parts = [Partition.uniform(0, 1, 10), Partition.uniform(-1, 2, 18)]
        specs = [
            AttributeSpec("g", parts[0], gauss),
            AttributeSpec("u", parts[1], uni),
        ]
        service = AggregationService(specs, n_shards=3)
        streams = {
            spec.name: StreamingReconstructor(spec.x_partition, spec.randomizer)
            for spec in specs
        }
        rng = np.random.default_rng(42)
        for _ in range(3):
            batch = {
                "g": gauss.randomize(rng.uniform(0.2, 0.8, 700), seed=rng),
                "u": uni.randomize(rng.uniform(-0.5, 1.5, 900), seed=rng),
            }
            service.ingest(batch)
            for name, values in batch.items():
                streams[name].update(values)
        results = service.estimate_all()
        for name, stream in streams.items():
            expected = stream.estimate()
            assert np.array_equal(
                expected.distribution.probs, results[name].distribution.probs
            )
            assert expected.n_iterations == results[name].n_iterations

    def test_concurrent_ingestion_parity(self, part, noise):
        """4 threads hammering 4 shards still merge to the exact stream."""
        w = _disclose(noise, 8_000, seed=21)
        chunks = np.array_split(w, 32)
        service = AggregationService(
            [AttributeSpec("x", part, noise)], n_shards=4
        )

        def worker(index):
            for chunk in chunks[index::4]:
                service.ingest({"x": chunk}, shard=index)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(worker, range(4)))

        stream = StreamingReconstructor(part, noise).update(w)
        a = stream.estimate()
        b = service.estimate("x")
        assert service.n_seen("x") == w.size
        assert np.array_equal(a.distribution.probs, b.distribution.probs)

    def test_concurrent_mixed_wire_parity_with_snapshot(self, part, noise):
        """The acceptance contract for the fast path: 4 threads hammering
        mixed JSON-shaped and columnar-decoded batches across 4 shards —
        with a snapshot/restore in the middle of the run — still produce
        estimates bit-identical to the serial single-shard reference."""
        w = _disclose(noise, 8_000, seed=55)
        chunks = np.array_split(w, 48)
        first_half, second_half = chunks[:24], chunks[24:]

        def hammer(service, chunk_list):
            def worker(index):
                for i, chunk in enumerate(chunk_list[index::4]):
                    if i % 2:
                        # the columnar wire: encode, decode (read-only
                        # frombuffer views), prepare, fast-path ingest
                        batch, _ = decode_columns(encode_columns({"x": chunk}))
                        service.ingest_prepared(
                            service.prepare(batch), shard=index
                        )
                    else:
                        # the JSON wire: plain Python float lists
                        service.ingest({"x": chunk.tolist()}, shard=index)

            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(worker, range(4)))

        service = AggregationService(
            [AttributeSpec("x", part, noise)], n_shards=4
        )
        hammer(service, first_half)
        mid = service.estimate("x")  # advance the warm start pre-snapshot

        restored = AggregationService.restore(service.snapshot())
        hammer(restored, second_half)
        final = restored.estimate("x")

        stream = StreamingReconstructor(part, noise)
        for chunk in first_half:
            stream.update(chunk)
        expected_mid = stream.estimate()
        for chunk in second_half:
            stream.update(chunk)
        expected_final = stream.estimate()

        assert restored.n_seen("x") == w.size
        assert np.array_equal(
            expected_mid.distribution.probs, mid.distribution.probs
        )
        assert np.array_equal(
            expected_final.distribution.probs, final.distribution.probs
        )
        assert expected_final.n_iterations == final.n_iterations
        assert expected_final.chi2_statistic == final.chi2_statistic

    def test_concurrent_ingestion_single_shard_is_safe(self, part, noise):
        """Contending writers on one shard never lose or corrupt counts."""
        w = _disclose(noise, 4_000, seed=22)
        chunks = np.array_split(w, 40)
        service = AggregationService([AttributeSpec("x", part, noise)])
        barrier = threading.Barrier(4)

        def worker(index):
            barrier.wait()
            for chunk in chunks[index::4]:
                service.ingest({"x": chunk}, shard=0)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(worker, range(4)))
        counts, seen = service.shards.merged("x")
        assert seen == w.size
        assert counts.sum() == w.size


class TestSnapshotRestore:
    def test_roundtrip_estimates_bit_identical(self, part, noise):
        service = AggregationService(
            [AttributeSpec("x", part, noise)], n_shards=4
        )
        service.ingest({"x": _disclose(noise, 3_000, seed=31)})
        service.estimate("x")  # advance the warm start
        service.ingest({"x": _disclose(noise, 1_000, seed=32)})

        restored = AggregationService.restore(service.snapshot())
        assert restored.attributes == service.attributes
        assert restored.n_shards == 4
        assert restored.n_seen("x") == service.n_seen("x")
        a = service.estimate("x")
        b = restored.estimate("x")
        assert np.array_equal(a.distribution.probs, b.distribution.probs)
        assert a.n_iterations == b.n_iterations

    def test_restored_service_keeps_ingesting(self, part, noise, tmp_path):
        service = AggregationService([AttributeSpec("x", part, noise)])
        service.ingest({"x": _disclose(noise, 2_000, seed=33)})
        path = tmp_path / "snap.json"
        service.save(path)

        restored = AggregationService.load(path)
        more = _disclose(noise, 2_000, seed=34)
        service.ingest({"x": more})
        restored.ingest({"x": more})
        a = service.estimate("x")
        b = restored.estimate("x")
        assert np.array_equal(a.distribution.probs, b.distribution.probs)

    def test_snapshot_preserves_config(self, part, noise):
        service = AggregationService(
            [AttributeSpec("x", part, noise)],
            stopping="delta",
            tol=1e-6,
            max_iterations=77,
        )
        restored = AggregationService.restore(service.snapshot())
        assert restored.stopping == "delta"
        assert restored.tol == 1e-6
        assert restored.max_iterations == 77

    def test_load_rejects_other_kinds(self, part, tmp_path):
        from repro import serialize

        path = tmp_path / "part.json"
        serialize.save(part, path)
        with pytest.raises(ValidationError):
            AggregationService.load(path)

    def test_restore_rejects_malformed(self):
        with pytest.raises(ValidationError):
            AggregationService.restore(
                {"kind": "aggregation_service", "version": 1}
            )

    def test_restore_rejects_mismatched_counts(self, part, noise):
        service = AggregationService([AttributeSpec("x", part, noise)])
        payload = service.snapshot()
        payload["state"]["x"]["y_counts"] = [1.0, 2.0]
        with pytest.raises(ValidationError):
            AggregationService.restore(payload)

    def test_restore_rejects_mismatched_theta(self, part, noise):
        service = AggregationService([AttributeSpec("x", part, noise)])
        payload = service.snapshot()
        payload["state"]["x"]["theta"] = [0.5, 0.5]
        with pytest.raises(ValidationError):
            AggregationService.restore(payload)


class TestClassConditionalShards:
    """The tentpole: per-class stripes in the same fused bincount pass."""

    def test_labeled_ingest_partitions_by_class(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shards = ShardSet({"x": y_part}, n_shards=2, n_classes=3)
        shards.ingest({"x": [0.1, 0.5, 0.9]}, classes=[0, 2, 2])
        shards.ingest({"x": [0.3]})  # unlabeled traffic still lands
        matrix = shards.merged_by_class("x")
        assert matrix.shape == (4, y_part.n_intervals)
        assert matrix[0].sum() == 1  # unlabeled
        assert matrix[1].sum() == 1  # class 0
        assert matrix[2].sum() == 0  # class 1
        assert matrix[3].sum() == 2  # class 2
        counts, seen = shards.merged("x")
        assert seen == 4
        assert np.array_equal(matrix.sum(axis=0), counts)

    def test_class_blocks_equal_per_class_histograms(self, part, noise):
        """Each class block is bitwise the histogram of that class's
        values — the aggregate the training tier reconstructs from."""
        y_part = part.expanded(noise.support_half_width())
        w = _disclose(noise, 4_000, seed=60)
        rng = np.random.default_rng(61)
        labels = rng.integers(0, 2, w.size)
        shards = ShardSet({"x": y_part}, n_shards=4, n_classes=2)
        for chunk in np.array_split(np.arange(w.size), 13):
            shards.ingest({"x": w[chunk]}, classes=labels[chunk])
        matrix = shards.merged_by_class("x")
        for c in (0, 1):
            assert np.array_equal(
                matrix[c + 1], y_part.histogram(w[labels == c])
            )

    def test_class_labels_validated(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shards = ShardSet({"x": y_part}, n_classes=2)
        with pytest.raises(ValidationError):
            shards.ingest({"x": [0.5]}, classes=[2])
        with pytest.raises(ValidationError):
            shards.ingest({"x": [0.5]}, classes=[-1])
        with pytest.raises(ValidationError):
            shards.ingest({"x": [0.5]}, classes=[0.5])
        with pytest.raises(ValidationError):
            shards.ingest({"x": [0.5]}, classes=[0, 1])
        with pytest.raises(ValidationError):
            ShardSet({"x": y_part}, n_classes=-1)

    def test_classes_need_class_aware_layout(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        shards = ShardSet({"x": y_part})
        with pytest.raises(ValidationError, match="class"):
            shards.ingest({"x": [0.5]}, classes=[0])

    def test_layout_compatibility_includes_classes(self, part, noise):
        y_part = part.expanded(noise.support_half_width())
        plain = HistogramShard({"x": y_part})
        labeled = HistogramShard({"x": y_part}, n_classes=2)
        with pytest.raises(ValidationError):
            labeled.ingest_prepared(plain.prepare({"x": [0.5]}))

    def test_estimates_unchanged_by_class_partitioning(self, part, noise):
        """Class-aware and class-unaware services serve bit-identical
        estimates for the same stream."""
        w = _disclose(noise, 3_000, seed=62)
        labels = (np.arange(w.size) % 2).astype(int)
        plain = AggregationService([AttributeSpec("x", part, noise)])
        labeled = AggregationService(
            [AttributeSpec("x", part, noise)], n_shards=3, classes=2
        )
        plain.ingest({"x": w})
        for chunk in np.array_split(np.arange(w.size), 7):
            labeled.ingest({"x": w[chunk]}, classes=labels[chunk])
        a = plain.estimate("x")
        b = labeled.estimate("x")
        assert np.array_equal(a.distribution.probs, b.distribution.probs)
        assert a.n_iterations == b.n_iterations

    def test_n_seen_by_class(self, part, noise):
        service = AggregationService(
            [AttributeSpec("x", part, noise)], classes=2
        )
        service.ingest({"x": [0.1, 0.2]}, classes=[0, 1])
        service.ingest({"x": [0.3]})
        assert service.n_seen_by_class("x") == {
            "unlabeled": 1, "0": 1, "1": 1,
        }
        with pytest.raises(ValidationError):
            service.n_seen_by_class("nope")


class TestClassAwareSnapshots:
    def test_roundtrip_preserves_class_partials(self, part, noise):
        service = AggregationService(
            [AttributeSpec("x", part, noise)], n_shards=3, classes=2
        )
        w = _disclose(noise, 2_000, seed=63)
        labels = (np.arange(w.size) % 2).astype(int)
        service.ingest({"x": w}, classes=labels)
        service.ingest({"x": [0.5, 0.6]})  # plus unlabeled traffic
        restored = AggregationService.restore(service.snapshot())
        assert restored.classes == 2
        assert np.array_equal(
            restored.merged_by_class("x"), service.merged_by_class("x")
        )
        assert restored.n_seen("x") == service.n_seen("x")
        a = service.estimate("x")
        b = restored.estimate("x")
        assert np.array_equal(a.distribution.probs, b.distribution.probs)

    def test_classless_snapshot_format_unchanged(self, part, noise):
        """PR 3/4 snapshots (no 'classes' key, flat y_counts) restore."""
        service = AggregationService([AttributeSpec("x", part, noise)])
        service.ingest({"x": _disclose(noise, 500, seed=64)})
        payload = service.snapshot()
        assert payload["classes"] == 0
        assert isinstance(payload["state"]["x"]["y_counts"][0], float)
        del payload["classes"]  # an old snapshot predates the key
        restored = AggregationService.restore(payload)
        assert restored.n_seen("x") == 500

    def test_block_count_mismatch_is_serialization_error(self, part, noise):
        from repro.exceptions import SerializationError

        service = AggregationService(
            [AttributeSpec("x", part, noise)], classes=2
        )
        service.ingest({"x": [0.5]}, classes=[0])
        payload = service.snapshot()
        payload["state"]["x"]["y_counts"] = payload["state"]["x"]["y_counts"][:2]
        with pytest.raises(SerializationError, match="class"):
            AggregationService.restore(payload)

    def test_ragged_counts_are_serialization_error_not_numpy(self, part, noise):
        """The bugfix: a ragged y_counts row used to surface as a raw
        numpy error."""
        from repro.exceptions import SerializationError

        service = AggregationService(
            [AttributeSpec("x", part, noise)], classes=2
        )
        service.ingest({"x": [0.5]}, classes=[0])
        payload = service.snapshot()
        payload["state"]["x"]["y_counts"][1] = [1.0, 2.0]  # wrong bin count
        with pytest.raises(SerializationError):
            AggregationService.restore(payload)
        payload = service.snapshot()
        payload["state"]["x"]["y_counts"] = [[1.0], [2.0, 3.0], 4.0]
        with pytest.raises(SerializationError):
            AggregationService.restore(payload)

    def test_non_numeric_classes_field_is_clean_error(self, part, noise):
        """A hand-edited snapshot with classes='two' must not traceback."""
        service = AggregationService([AttributeSpec("x", part, noise)])
        payload = service.snapshot()
        payload["classes"] = "two"
        with pytest.raises(ValidationError, match="malformed"):
            AggregationService.restore(payload)

    def test_n_seen_disagreement_is_serialization_error(self, part, noise):
        from repro.exceptions import SerializationError

        service = AggregationService([AttributeSpec("x", part, noise)])
        service.ingest({"x": [0.5]})
        payload = service.snapshot()
        payload["state"]["x"]["n_seen"] = 99
        with pytest.raises(SerializationError, match="n_seen"):
            AggregationService.restore(payload)


class TestServiceFromSpec:
    def test_builds_attributes(self):
        service = service_from_spec(
            {
                "shards": 3,
                "classes": 2,
                "intervals": 10,
                "attributes": [
                    {"name": "age", "low": 20, "high": 80, "privacy": 1.0},
                    {
                        "name": "salary",
                        "low": 0,
                        "high": 100_000,
                        "noise": "gaussian",
                        "privacy": 0.5,
                        "intervals": 16,
                    },
                ],
            }
        )
        assert service.attributes == ("age", "salary")
        assert service.n_shards == 3
        assert service.classes == 2
        assert service.spec("age").x_partition.n_intervals == 10
        assert service.spec("salary").x_partition.n_intervals == 16
        assert isinstance(service.spec("salary").randomizer, GaussianRandomizer)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValidationError):
            service_from_spec("not a dict")
        with pytest.raises(ValidationError):
            service_from_spec({"attributes": []})
        with pytest.raises(ValidationError):
            service_from_spec({"attributes": [{"name": "x"}]})
        with pytest.raises(ValidationError):
            service_from_spec(
                {
                    "attributes": [
                        {"name": "x", "low": 0, "high": 1, "noise": "laplace"}
                    ]
                }
            )
