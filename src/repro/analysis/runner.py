"""Checker orchestration: run, suppress, fingerprint, ratchet, render.

:func:`lint_project` is the one entry point the CLI and tests share:
walk (or accept) a :class:`~repro.analysis.walker.Project`, run every
registered checker whose rules are selected, drop findings carrying an
inline ``# ppdm: ignore[RULE]``, attach content fingerprints, and split
the remainder against the committed baseline.  The result gates like
``tools/check_coverage.py``: *new* findings fail, and *stale* baseline
entries fail too, so ``tools/lint_baseline.txt`` can only shrink.

Examples
--------
>>> from repro.analysis.runner import lint_project
>>> from repro.analysis.walker import parse_source, Project
>>> bad = parse_source("import numpy as np\\n"
...                    "rng = np.random.default_rng(3)\\n",
...                    "examples/demo.py", "examples")
>>> result = lint_project(project=Project([bad]))
>>> result.ok, [f.rule for f in result.new]
(False, ['D002'])
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from pathlib import Path
from typing import Iterable

# importing the checker modules is what registers them
from repro.analysis import (  # noqa: F401
    determinism,
    locks,
    raising,
    robustness,
    wire_lint,
)
from repro.analysis.findings import (
    Finding,
    diff_baseline,
    fingerprint,
    format_baseline,
    load_baseline,
)
from repro.analysis.registry import REGISTRY, CheckerRegistry
from repro.analysis.walker import Project, walk_project
from repro.exceptions import AnalysisError

__all__ = [
    "LintResult",
    "run_checkers",
    "lint_project",
    "render_text",
    "render_json",
    "write_baseline",
    "DEFAULT_BASELINE",
]

#: baseline location relative to the project root
DEFAULT_BASELINE = Path("tools") / "lint_baseline.txt"


@dataclasses.dataclass
class LintResult:
    """Everything one lint run produced.

    Attributes
    ----------
    findings:
        Every post-suppression finding, digests attached, sorted.
    new:
        Findings the baseline does not cover — these fail the run.
    baselined:
        Findings accepted by the baseline (reported, not failing).
    stale:
        Baseline entries that no longer occur — these fail too (the
        ratchet: remove them from the baseline in the same change).
    suppressed:
        Count of findings dropped by inline ``ppdm: ignore`` comments.
    """

    findings: list
    new: list
    baselined: list
    stale: list
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """Does this run gate green (nothing new, nothing stale)?"""
        return not self.new and not self.stale


def run_checkers(
    project: Project,
    registry: CheckerRegistry | None = None,
    rules: Iterable[str] | None = None,
) -> tuple:
    """Run every selected checker; returns ``(findings, suppressed)``.

    Findings are validated against the emitting checker's declared
    rules and the rule's declared categories, filtered by inline
    suppressions, given content fingerprints, and sorted.  ``P000``
    parse errors are always included: an unparseable file cannot be
    vouched for by any rule.
    """
    reg = REGISTRY if registry is None else registry
    selected = set(reg.select_rules(rules))
    collected: list = []
    for module in project.modules:
        if module.parse_error is not None:
            collected.append(module.parse_error)
    for spec in reg.checkers():
        if not any(rule.id in selected for rule in spec.rules):
            continue
        declared = {rule.id: rule for rule in spec.rules}
        for finding in spec.fn(project):
            rule = declared.get(finding.rule)
            if rule is None:
                raise AnalysisError(
                    f"checker {spec.id!r} emitted undeclared rule "
                    f"{finding.rule!r}"
                )
            if finding.rule not in selected:
                continue
            module = project.module(finding.path)
            if module is not None and module.category not in rule.categories:
                continue
            collected.append(
                dataclasses.replace(finding, severity=rule.severity)
            )
    suppressed = 0
    final: list = []
    for finding in collected:
        module = project.module(finding.path)
        line_text = (
            module.line_text(finding.line) if module is not None else ""
        )
        if module is not None:
            marks = module.suppressed(finding.line)
            if "*" in marks or finding.rule in marks:
                suppressed += 1
                continue
        final.append(
            dataclasses.replace(
                finding, digest=fingerprint(finding, line_text)
            )
        )
    final.sort(key=Finding.sort_key)
    return final, suppressed


def lint_project(
    root: Path | None = None,
    rules: Iterable[str] | None = None,
    baseline: Path | None = None,
    project: Project | None = None,
    registry: CheckerRegistry | None = None,
) -> LintResult:
    """Walk, check, and ratchet one project; the CLI/test entry point.

    ``project`` short-circuits the filesystem walk (tests pass
    synthetic projects).  ``baseline=None`` resolves to
    ``<root>/tools/lint_baseline.txt`` when the project has a root, and
    to an empty baseline otherwise.  When ``rules`` selects a subset,
    the baseline is restricted to entries of the selected rules so
    accepted findings of *unselected* rules are not misreported stale.
    """
    if project is None:
        project = walk_project(root)
    findings, suppressed = run_checkers(project, registry, rules)
    if baseline is None and project.root is not None:
        baseline = project.root / DEFAULT_BASELINE
    accepted = load_baseline(baseline) if baseline is not None else None
    if accepted is None:
        new, baselined, stale = list(findings), [], []
    else:
        if rules is not None:
            reg = REGISTRY if registry is None else registry
            selected = set(reg.select_rules(rules))
            accepted = Counter(
                {key: n for key, n in accepted.items() if key[0] in selected}
            )
        new, baselined, stale = diff_baseline(findings, accepted)
    return LintResult(
        findings=findings,
        new=new,
        baselined=baselined,
        stale=stale,
        suppressed=suppressed,
    )


def render_text(result: LintResult) -> str:
    """Human-readable report: one block per new finding, then a summary."""
    lines: list = []
    for finding in result.new:
        lines.append(
            f"{finding.location}: {finding.severity} {finding.rule} "
            f"[{finding.scope}] {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    if result.stale:
        lines.append("")
        lines.append(
            "stale baseline entries (fixed findings still listed — the "
            "baseline only shrinks; remove these lines):"
        )
        for entry in result.stale:
            lines.append("    " + " ".join(entry))
    lines.append("")
    lines.append(
        f"{len(result.new)} new, {len(result.baselined)} baselined, "
        f"{len(result.stale)} stale, {result.suppressed} suppressed"
    )
    lines.append("lint: " + ("OK" if result.ok else "FAIL"))
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, one JSON document)."""

    def encode(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "severity": finding.severity,
            "path": finding.path,
            "line": finding.line,
            "scope": finding.scope,
            "message": finding.message,
            "hint": finding.hint,
            "fingerprint": finding.digest,
        }

    payload = {
        "ok": result.ok,
        "counts": {
            "new": len(result.new),
            "baselined": len(result.baselined),
            "stale": len(result.stale),
            "suppressed": result.suppressed,
        },
        "new": [encode(f) for f in result.new],
        "baselined": [encode(f) for f in result.baselined],
        "stale": [" ".join(entry) for entry in result.stale],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def write_baseline(result: LintResult, path: Path) -> None:
    """Regenerate the baseline file to accept the current findings."""
    Path(path).write_text(format_baseline(result.findings), encoding="utf-8")
