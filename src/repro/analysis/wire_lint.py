"""Wire-format single-source-of-truth lint (rules W001, W002).

The binary ingest protocol — magic bytes, version numbers, header
layout — is defined exactly once, in :mod:`repro.service.wire`.  A
second copy of ``"<4sHHi"`` or ``b"PPDM"`` elsewhere starts life equal
and then silently diverges the first time the frame layout evolves;
clients keep "working" while decoding garbage.

* **W001 — struct usage outside the wire module.**  ``import struct``
  or ``struct.pack``/``unpack`` in any other library module means a
  second binary layout is being defined by hand.
* **W002 — duplicated wire constant.**  A literal equal to one of the
  wire module's canonical struct format strings or its magic bytes, or
  a module-level (re)definition of ``MAGIC``/``WIRE_VERSION*``/
  ``WIRE_CODEC*``, outside the wire module.  Importing the names from
  :mod:`repro.service.wire` is the approved pattern and does not fire.

Canonical constants are harvested from the *analyzed project's* wire
module AST (so the lint tracks the checkout being linted, not the
installed package); for synthetic in-memory projects without a wire
module, the installed module's source is located via
:func:`importlib.util.find_spec` — parsed, never imported.  Only string
and bytes literals are matched: bare integers like ``1`` are far too
common to police.

Examples
--------
>>> from repro.analysis.wire_lint import check_wire
>>> from repro.analysis.walker import parse_source, Project
>>> bad = parse_source(
...     "import struct\\n"
...     "HEADER = struct.Struct('<4sHHi')\\n",
...     "src/repro/service/other.py", "library")
>>> sorted({f.rule for f in check_wire(Project([bad]))})
['W001', 'W002']
"""

from __future__ import annotations

import ast
import importlib.util
import re
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import RuleSpec, checker
from repro.analysis.walker import ParsedModule, Project, iter_scoped, parse_source

__all__ = ["check_wire"]

#: the single module allowed to define the binary layout
_WIRE_HOME = "src/repro/service/wire.py"

#: module-level names reserved for the wire module
_RESERVED_NAME = re.compile(r"^(MAGIC|WIRE_VERSION\w*|WIRE_CODEC\w*)$")

#: struct functions taking a format string as first argument
_STRUCT_FORMAT_FNS = {
    "Struct",
    "pack",
    "unpack",
    "pack_into",
    "unpack_from",
    "calcsize",
    "iter_unpack",
}


def _wire_module(project: Project) -> ParsedModule | None:
    """The wire module to harvest canonical constants from.

    Prefer the analyzed checkout's copy; fall back to the installed
    package source (parsed without importing) for synthetic projects.
    """
    module = project.module(_WIRE_HOME)
    if module is not None:
        return module
    try:
        spec = importlib.util.find_spec("repro.service.wire")
    except (ImportError, ValueError):
        return None
    if spec is None or spec.origin is None:
        return None
    try:
        with open(spec.origin, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError:
        return None
    return parse_source(source, _WIRE_HOME, "library")


def _harvest_constants(wire: ParsedModule | None) -> tuple:
    """Canonical ``(format_strings, magic_values)`` from the wire AST."""
    formats: set = set()
    magics: set = set()
    if wire is None or wire.tree is None:
        return frozenset(), frozenset()
    for node in ast.walk(wire.tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in _STRUCT_FORMAT_FNS and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    formats.add(first.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and _RESERVED_NAME.match(target.id)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, bytes)
                ):
                    magics.add(node.value.value)
    return frozenset(formats), frozenset(magics)


@checker(
    "wire",
    title="Wire-format constants live only in repro.service.wire",
    rules=(
        RuleSpec(
            "W001",
            "struct import/use outside repro.service.wire",
            rationale=(
                "A second hand-written binary layout diverges from the "
                "canonical one the first time the frame format evolves; "
                "all packing goes through the wire module."
            ),
        ),
        RuleSpec(
            "W002",
            "duplicated wire constant (format string, magic, "
            "WIRE_VERSION*/WIRE_CODEC*)",
            rationale=(
                "A copied layout literal starts equal and rots silently; "
                "import MAGIC/WIRE_VERSION/encode_columns from "
                "repro.service.wire instead."
            ),
        ),
    ),
)
def check_wire(project: Project) -> Iterator[Finding]:
    """Run both wire-format rules over the library modules."""
    formats, magics = _harvest_constants(_wire_module(project))
    for module in project.iter_modules(("library",)):
        if module.tree is None or module.relpath == _WIRE_HOME:
            continue
        for node, scope in iter_scoped(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "struct":
                        yield Finding(
                            rule="W001",
                            path=module.relpath,
                            line=node.lineno,
                            scope=scope,
                            message="'import struct' outside the wire module",
                            hint=(
                                "encode/decode through repro.service.wire "
                                "instead of packing bytes by hand"
                            ),
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None and (
                    node.module.split(".")[0] == "struct"
                ):
                    yield Finding(
                        rule="W001",
                        path=module.relpath,
                        line=node.lineno,
                        scope=scope,
                        message=(
                            "'from struct import ...' outside the wire "
                            "module"
                        ),
                        hint=(
                            "encode/decode through repro.service.wire "
                            "instead of packing bytes by hand"
                        ),
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "struct"
                ):
                    yield Finding(
                        rule="W001",
                        path=module.relpath,
                        line=node.lineno,
                        scope=scope,
                        message=(
                            f"'struct.{node.attr}' used outside the wire "
                            "module"
                        ),
                        hint=(
                            "encode/decode through repro.service.wire "
                            "instead of packing bytes by hand"
                        ),
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and _RESERVED_NAME.match(target.id)
                        and scope == "<module>"
                    ):
                        yield Finding(
                            rule="W002",
                            path=module.relpath,
                            line=node.lineno,
                            scope=scope,
                            message=(
                                f"module-level '{target.id}' defined "
                                "outside the wire module"
                            ),
                            hint=(
                                "import the constant from "
                                "repro.service.wire; one definition only"
                            ),
                        )
            elif isinstance(node, ast.Constant):
                duplicated = (
                    isinstance(node.value, str) and node.value in formats
                ) or (isinstance(node.value, bytes) and node.value in magics)
                if duplicated:
                    yield Finding(
                        rule="W002",
                        path=module.relpath,
                        line=node.lineno,
                        scope=scope,
                        message=(
                            f"wire-format literal {node.value!r} duplicated "
                            "outside the wire module"
                        ),
                        hint=(
                            "reference the canonical constant in "
                            "repro.service.wire instead of copying it"
                        ),
                    )
