"""E5 — Classification accuracy at 100 % privacy, uniform noise (paper §5).

The paper's headline figure: for each function Fn1–Fn5, the accuracy of
Original, Randomized, Global, ByClass, and Local.  Paper shape:

* every reconstruction-based strategy beats training on raw randomized
  values, dramatically so on the harder functions;
* ByClass and Local are close to each other;
* Fn1 (single attribute) is essentially unharmed by ByClass/Local.
"""

from __future__ import annotations

from _common import once, report

from repro.experiments import ClassificationConfig, run_strategy_comparison
from repro.experiments.config import scaled
from repro.experiments.reporting import accuracy_matrix

CONFIG = ClassificationConfig(
    functions=(1, 2, 3, 4, 5),
    strategies=("original", "randomized", "global", "byclass", "local"),
    noise="uniform",
    privacy=1.0,
    n_train=scaled(10_000),
    n_test=scaled(3_000),
    seed=500,
)


def test_e5_accuracy_100privacy_uniform(benchmark):
    rows = once(benchmark, lambda: run_strategy_comparison(CONFIG))
    report(
        "e5_accuracy_100privacy_uniform",
        "E5: accuracy (%) at 100% privacy, uniform noise, "
        f"n_train={CONFIG.n_train}\n" + accuracy_matrix(rows),
    )

    acc = {(r.function, r.strategy): r.accuracy for r in rows}
    for fn in CONFIG.functions:
        # reconstruction-based training beats the randomized baseline
        assert acc[(fn, "byclass")] > acc[(fn, "randomized")], fn
        # and the original is the (approximate) upper bound
        assert acc[(fn, "original")] >= acc[(fn, "byclass")] - 0.03, fn
    # Fn1: single-attribute concept survives ByClass nearly unchanged
    assert acc[(1, "byclass")] > acc[(1, "original")] - 0.08
    # ByClass and Local land close together (the paper's observation)
    for fn in CONFIG.functions:
        assert abs(acc[(fn, "byclass")] - acc[(fn, "local")]) < 0.15, fn
