"""E23 — Multi-worker cluster ingest throughput vs eager single-worker serving.

``ppdm serve --workers N`` splits the paper's server across processes:
workers absorb randomized disclosures on their own ports, and the
coordinator answers ``/estimate`` over the union by pulling each
worker's O(bins) cumulative partial frame.  Because histogram counts
are exact integers in float64, the coordinator's merged union is
bit-identical to one process fed the same records — scale-out changes
the topology, never the math.

This benchmark drives real spawned clusters over HTTP and compares two
serving disciplines on identical pre-encoded columnar bodies:

* **eager, 1 worker** — the analyst queries after *every* batch, so
  each batch pays a partial pull plus warm-started Bayes sweeps per
  attribute (the refresh-per-batch baseline of e20, now over the wire);
* **deferred, 1/2/4 workers** — batches fan out round-robin to the
  workers and the coordinator reconstructs once at the end.

Asserted:

* coordinator estimates are **bit-identical** to a single-process
  service fed the same disclosures and refreshed at the same points
  (eager leg: refresh per batch; deferred legs: one final refresh), and
* the 4-worker deferred cluster ingests at >= 2x the eager leg's rate.

On a single core the worker counts roughly tie (processes compete for
the same CPU; scale-out is about using *more machines*, which a CI
runner does not have) — the asserted >= 2x win is architectural:
deferred O(bins) partial merges instead of per-batch reconstruction
sweeps.  The deferred 4-vs-1-worker ratio is recorded as an
informational metric without a floor.
"""

from __future__ import annotations

import http.client
import json
import os
import time
from urllib.parse import urlparse

import numpy as np
from _common import experiment, run_experiment

from repro.service import service_from_spec
from repro.service.cluster import start_cluster
from repro.service.wire import CONTENT_TYPE_COLUMNS, encode_columns
from repro.utils.rng import ensure_rng

N_ATTRIBUTES = 2
N_BATCHES = 48
WORKER_COUNTS = (1, 2, 4)

SPEC = {
    "shards": 1,
    "intervals": 16,
    "attributes": [
        {"name": f"a{j}", "low": float(10 * j), "high": float(10 * j + 8 + j),
         "noise": "uniform", "privacy": 1.0}
        for j in range(N_ATTRIBUTES)
    ],
}


def _throughput_floor_scale() -> float:
    """Scales the wall-clock throughput threshold (parity asserts are
    unaffected).  Shared CI runners set this below 1 so a noisy neighbour
    cannot flake the build while a real regression still fails."""
    return float(os.environ.get("PPDM_E23_THROUGHPUT_FLOOR", "1.0"))


def _reference_service():
    """A single-process service built from the same deployment spec."""
    return service_from_spec(dict(SPEC))


def _disclosures(n_per_attribute: int, seed: int):
    """Pre-generated randomized batches: ``batches[b][name] -> values``."""
    rng = ensure_rng(seed)
    reference = _reference_service()
    per_batch = n_per_attribute // N_BATCHES
    batches = []
    for _ in range(N_BATCHES):
        batch = {}
        for name in reference.attributes:
            spec = reference.spec(name)
            low, high = spec.x_partition.low, spec.x_partition.high
            span = high - low
            center = low + span * 0.35
            x = np.clip(rng.normal(center, 0.15 * span, per_batch), low, high)
            batch[name] = spec.randomizer.randomize(x, seed=rng)
        batches.append(batch)
    return batches


class _Client:
    """One keep-alive HTTP connection to a cluster node."""

    def __init__(self, url: str) -> None:
        parsed = urlparse(url)
        self.conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=60
        )

    def post_columns(self, body: bytes) -> None:
        self.conn.request(
            "POST", "/ingest", body=body,
            headers={"Content-Type": CONTENT_TYPE_COLUMNS},
        )
        response = self.conn.getresponse()
        payload = response.read()
        assert response.status == 200, payload

    def get_estimate(self, name: str) -> dict:
        self.conn.request("GET", f"/estimate?attribute={name}")
        response = self.conn.getresponse()
        payload = response.read()
        assert response.status == 200, payload
        return json.loads(payload)

    def close(self) -> None:
        self.conn.close()


def _run_cluster(bodies, names, n_workers: int, *, eager: bool) -> tuple:
    """Ingest every body over HTTP; return (seconds, final estimates)."""
    supervisor = start_cluster(SPEC, n_workers=n_workers, sync_interval=3600.0)
    try:
        supervisor.wait_ready(timeout=120.0)
        workers = [_Client(url) for url in supervisor.worker_urls()]
        coordinator = _Client(supervisor.url)
        start = time.perf_counter()
        for index, body in enumerate(bodies):
            workers[index % n_workers].post_columns(body)
            if eager:
                for name in names:
                    coordinator.get_estimate(name)
        estimates = {name: coordinator.get_estimate(name) for name in names}
        seconds = time.perf_counter() - start
        for client in workers:
            client.close()
        coordinator.close()
    finally:
        supervisor.shutdown()
    return seconds, estimates


def _reference_estimates(batches, *, eager: bool) -> dict:
    """Single-process estimates refreshed at the same points as the leg."""
    service = _reference_service()
    for batch in batches:
        service.ingest(batch)
        if eager:
            for name in service.attributes:
                service.estimate(name, warn=False)
    return {
        name: service.estimate(name, warn=False)
        for name in service.attributes
    }


def _assert_parity(reference, estimates, n_records_per_attribute) -> None:
    """Coordinator estimates must be bitwise the single-process ones."""
    for name, expected in reference.items():
        result = estimates[name]
        assert result["n_seen"] == n_records_per_attribute, name
        assert result["n_iterations"] == expected.n_iterations, name
        assert np.array_equal(
            np.asarray(result["probs"]), expected.distribution.probs
        ), name


@experiment(
    "e23",
    title="Multi-worker cluster ingest throughput",
    tags=("service", "cluster", "smoke"),
    seed=7,
)
def run_e23(ctx):
    n_per_attribute = ctx.scaled(48_000)
    batches = _disclosures(n_per_attribute, seed=ctx.seed)
    names = tuple(batches[0])
    n_records = sum(batch[name].size for batch in batches for name in names)
    per_attribute = n_records // N_ATTRIBUTES
    bodies = [encode_columns(batch) for batch in batches]
    ctx.record(
        n_records=n_records,
        n_attributes=N_ATTRIBUTES,
        n_batches=N_BATCHES,
        worker_counts="/".join(str(w) for w in WORKER_COUNTS),
        noise="uniform",
    )

    eager_reference = _reference_estimates(batches, eager=True)
    deferred_reference = _reference_estimates(batches, eager=False)

    eager_seconds, estimates = _run_cluster(bodies, names, 1, eager=True)
    _assert_parity(eager_reference, estimates, per_attribute)

    deferred_seconds = {}
    for n_workers in WORKER_COUNTS:
        seconds, estimates = _run_cluster(
            bodies, names, n_workers, eager=False
        )
        _assert_parity(deferred_reference, estimates, per_attribute)
        deferred_seconds[n_workers] = seconds

    eager_rate = n_records / eager_seconds
    rows = [
        (
            "eager (estimate/batch)",
            "1",
            f"{eager_seconds * 1e3:.1f}",
            f"{eager_rate:,.0f}",
            "1.00x",
        )
    ]
    for n_workers in WORKER_COUNTS:
        rate = n_records / deferred_seconds[n_workers]
        rows.append(
            (
                "deferred (final estimate)",
                str(n_workers),
                f"{deferred_seconds[n_workers] * 1e3:.1f}",
                f"{rate:,.0f}",
                f"{rate / eager_rate:.2f}x",
            )
        )
    speedup = (n_records / deferred_seconds[4]) / eager_rate
    scaleout = deferred_seconds[1] / deferred_seconds[4]

    from repro.experiments.reporting import format_table

    table_text = format_table(
        ("serving discipline", "workers", "wall ms", "records/s", "vs eager"),
        rows,
        title=(
            f"E23: cluster ingest over HTTP, {N_ATTRIBUTES} attributes x "
            f"{n_per_attribute} records, spawned worker processes"
        ),
    )
    summary = (
        f"\n4-worker deferred speedup vs eager 1-worker serving = "
        f"{speedup:.2f}x"
        f"\ndeferred 4-vs-1-worker ratio = {scaleout:.2f}x "
        f"(informational; CI runs on one core)"
        f"\ncoordinator estimates bit-identical to a single process fed "
        f"the same disclosures at every worker count"
    )
    ctx.report(table_text + summary, name="e23_multiworker")
    ctx.record_timing(
        eager_1_worker_ms=eager_seconds * 1e3,
        speedup_4_workers=speedup,
        scaleout_4_vs_1=scaleout,
        **{
            f"deferred_{k}_workers_ms": v * 1e3
            for k, v in deferred_seconds.items()
        },
    )

    floor = 2.0 * _throughput_floor_scale()
    assert speedup >= floor, f"expected >= {floor:.2f}x, got {speedup:.2f}x"

    return {
        "bit_identical": True,
        "n_worker_processes_max": max(WORKER_COUNTS),
        "records_per_attribute": per_attribute,
    }


def test_e23_multiworker(benchmark):
    run_experiment(benchmark, "e23")
