"""Sharded server-side aggregation of randomized disclosures.

The paper's deployment is a server reconstructing distributions from
millions of independently randomized disclosures.  This subpackage is
that server's aggregation tier:

* :mod:`repro.service.shards` — :class:`HistogramShard` /
  :class:`ShardSet`: mergeable noise-expanded histogram partials, so N
  ingestion workers accumulate concurrently and a refresh merges in
  O(shards x bins),
* :mod:`repro.service.service` — :class:`AggregationService`: the facade
  gluing the shard set to one shared
  :class:`~repro.core.engine.ReconstructionEngine` (one kernel cache
  across all attributes), with warm-started ``estimate()`` and
  snapshot/restore through :mod:`repro.serialize`,
* :mod:`repro.service.httpd` — a stdlib JSON-over-HTTP front end behind
  ``ppdm serve``.

Estimates are bit-identical to a single-stream
:class:`~repro.core.streaming.StreamingReconstructor` fed the same
disclosures — sharding changes the ingestion topology, never the math.
"""

from repro.service.httpd import ServiceHTTPServer
from repro.service.service import AggregationService, service_from_spec
from repro.service.shards import AttributeSpec, HistogramShard, ShardSet

__all__ = [
    "AggregationService",
    "AttributeSpec",
    "HistogramShard",
    "ShardSet",
    "ServiceHTTPServer",
    "service_from_spec",
]
