"""Known-bad fixture for the determinism checker (D001/D002/D003).

Parsed by ``tests/test_analysis.py``; never imported or executed.
"""

import random
import time

import numpy as np


def hidden_global_state(n):
    np.random.seed(0)  # D001: global numpy RNG state
    a = np.random.uniform(size=n)  # D001
    b = random.random()  # D001: global stdlib RNG state
    return a, b


def adhoc_generator():
    return np.random.default_rng(7)  # D002: bypasses ensure_rng


def clock_seeded():
    seed = time.time_ns()  # D003: time-derived seed variable
    rng = np.random.default_rng(time.time())  # D002 + D003
    return seed, rng


def timing_is_fine():
    start = time.perf_counter()  # no finding: timing, not seeding
    return time.perf_counter() - start
