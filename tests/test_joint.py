"""Tests for joint (2-D) distribution reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.joint import JointBayesReconstructor, JointReconstructionResult
from repro.core.partition import Partition
from repro.core.randomizers import UniformRandomizer
from repro.exceptions import ConvergenceWarning, ValidationError


def correlated_sample(n, rho, seed):
    """Gaussian copula-ish pair on [0, 1]^2 with correlation ~rho."""
    rng = np.random.default_rng(seed)
    z1 = rng.normal(size=n)
    z2 = rho * z1 + np.sqrt(1 - rho**2) * rng.normal(size=n)
    clip = lambda z: np.clip((z + 3) / 6, 0, 1)
    return clip(z1), clip(z2)


@pytest.fixture
def setup():
    part = Partition.uniform(0, 1, 12)
    noise = UniformRandomizer.from_privacy(0.4, 1.0)
    return part, noise


class TestConfiguration:
    def test_rejects_bad_iterations(self):
        with pytest.raises(ValidationError):
            JointBayesReconstructor(max_iterations=0)

    def test_rejects_bad_stopping(self):
        with pytest.raises(ValidationError):
            JointBayesReconstructor(stopping="psychic")

    def test_rejects_misaligned_inputs(self, setup):
        part, noise = setup
        with pytest.raises(ValidationError):
            JointBayesReconstructor().reconstruct(
                np.zeros(10), np.zeros(11), (part, part), (noise, noise)
            )

    def test_rejects_non_additive_randomizer(self, setup):
        part, noise = setup
        from repro.core.randomizers import ValueClassMembership

        with pytest.raises(ValidationError):
            JointBayesReconstructor().reconstruct(
                np.zeros(5),
                np.zeros(5),
                (part, part),
                (ValueClassMembership(part), noise),
            )


class TestReconstruction:
    def test_simplex(self, setup):
        part, noise = setup
        x1, x2 = correlated_sample(3_000, 0.8, seed=1)
        result = JointBayesReconstructor().reconstruct(
            noise.randomize(x1, seed=2),
            noise.randomize(x2, seed=3),
            (part, part),
            (noise, noise),
        )
        assert result.probs.shape == (12, 12)
        assert result.probs.min() >= 0
        assert result.probs.sum() == pytest.approx(1.0)

    def test_recovers_correlation(self, setup):
        """The point of the extension: correlation survives reconstruction."""
        part, noise = setup
        x1, x2 = correlated_sample(8_000, 0.85, seed=4)
        true_corr = float(np.corrcoef(x1, x2)[0, 1])

        w1 = noise.randomize(x1, seed=5)
        w2 = noise.randomize(x2, seed=6)
        noisy_corr = float(np.corrcoef(w1, w2)[0, 1])

        result = JointBayesReconstructor().reconstruct(
            w1, w2, (part, part), (noise, noise)
        )
        rec_corr = result.correlation()
        # the raw randomized correlation is attenuated by the noise ...
        assert noisy_corr < true_corr - 0.1
        # ... the reconstructed joint recovers most of it
        assert rec_corr > noisy_corr + 0.05
        assert rec_corr == pytest.approx(true_corr, abs=0.15)

    def test_independent_pair_stays_independent(self, setup):
        part, noise = setup
        x1, x2 = correlated_sample(6_000, 0.0, seed=7)
        result = JointBayesReconstructor().reconstruct(
            noise.randomize(x1, seed=8),
            noise.randomize(x2, seed=9),
            (part, part),
            (noise, noise),
        )
        assert abs(result.correlation()) < 0.1

    def test_marginals_match_1d_reconstruction(self, setup):
        """Joint marginals agree with the paper's per-attribute estimates."""
        from repro.core.reconstruction import BayesReconstructor

        part, noise = setup
        x1, x2 = correlated_sample(6_000, 0.6, seed=10)
        w1 = noise.randomize(x1, seed=11)
        w2 = noise.randomize(x2, seed=12)

        joint = JointBayesReconstructor().reconstruct(
            w1, w2, (part, part), (noise, noise)
        )
        single = BayesReconstructor().reconstruct(w1, part, noise)
        marginal = joint.marginal(0)
        assert np.abs(marginal - single.distribution.probs).sum() < 0.25

    def test_marginal_axis_validated(self, setup):
        part, noise = setup
        result = JointReconstructionResult(
            probs=np.full((2, 2), 0.25),
            partitions=(Partition.uniform(0, 1, 2), Partition.uniform(0, 1, 2)),
            n_iterations=1,
            converged=True,
        )
        with pytest.raises(ValidationError):
            result.marginal(2)

    def test_degenerate_point_mass_correlation_zero(self):
        part = Partition.uniform(0, 1, 4)
        probs = np.zeros((4, 4))
        probs[1, 2] = 1.0
        result = JointReconstructionResult(
            probs=probs, partitions=(part, part), n_iterations=1, converged=True
        )
        assert result.correlation() == 0.0

    def test_max_iterations_warns(self, setup):
        part, noise = setup
        x1, x2 = correlated_sample(1_000, 0.5, seed=13)
        with pytest.warns(ConvergenceWarning):
            JointBayesReconstructor(
                max_iterations=1, tol=1e-15, stopping="delta"
            ).reconstruct(
                noise.randomize(x1, seed=14),
                noise.randomize(x2, seed=15),
                (part, part),
                (noise, noise),
            )

    def test_different_partitions_per_attribute(self):
        part1 = Partition.uniform(0, 1, 8)
        part2 = Partition.uniform(0, 1, 15)
        noise = UniformRandomizer(0.15)
        x1, x2 = correlated_sample(2_000, 0.5, seed=16)
        result = JointBayesReconstructor().reconstruct(
            noise.randomize(x1, seed=17),
            noise.randomize(x2, seed=18),
            (part1, part2),
            (noise, noise),
        )
        assert result.probs.shape == (8, 15)
