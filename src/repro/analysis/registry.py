"""Declarative checker registry for the static analyzer.

Every checker lives in a module under :mod:`repro.analysis` as a plain
function decorated with :func:`checker` — the same registration shape as
:func:`repro.bench.registry.experiment`:

.. code-block:: python

    @checker(
        "determinism",
        title="Seeded-randomness discipline",
        rules=(
            RuleSpec("D001", "hidden global RNG state", ...),
        ),
    )
    def check_determinism(project):
        yield Finding(...)

Importing the module registers the checker; iteration is naturally
sorted by checker id so runs — and therefore finding order, baselines,
and CI output — never depend on import order.  A checker receives the
parsed :class:`~repro.analysis.walker.Project` and yields
:class:`~repro.analysis.findings.Finding` objects whose ``rule`` must be
one of its declared :class:`RuleSpec` ids.

Examples
--------
>>> from repro.analysis.registry import CheckerRegistry, RuleSpec, checker
>>> registry = CheckerRegistry()
>>> @checker("demo", title="Demo", rules=(RuleSpec("X001", "demo rule"),),
...          registry=registry)
... def check_demo(project):
...     return []
>>> registry.ids()
('demo',)
>>> registry.rule("X001").summary
'demo rule'
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.exceptions import AnalysisError

__all__ = [
    "RuleSpec",
    "Checker",
    "CheckerRegistry",
    "REGISTRY",
    "checker",
]

#: file categories the walker assigns (see repro.analysis.walker); a
#: rule applies only to the categories it names
CATEGORIES = ("library", "tools", "bench", "examples")

_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")
_RULE_ID_PATTERN = re.compile(r"^[A-Z]\d{3}$")


def _natural_key(text: str) -> tuple:
    """Sort key ordering embedded integers numerically (e2 < e10)."""
    return tuple(
        int(part) if part.isdigit() else part
        for part in re.split(r"(\d+)", text)
    )


@dataclass(frozen=True)
class RuleSpec:
    """One rule a checker may emit findings for.

    Attributes
    ----------
    id:
        Short stable identifier: one letter (the rule family) plus
        three digits, e.g. ``"L001"``.
    summary:
        One-line description shown by ``ppdm lint --list-rules``.
    severity:
        ``"error"`` or ``"warning"`` — attached to every finding of
        this rule (display metadata; both gate CI).
    categories:
        File categories the rule applies to (default: library only).
    rationale:
        Why the invariant matters (rendered in the docs rule catalog).
    """

    id: str
    summary: str
    severity: str = "error"
    categories: tuple = ("library",)
    rationale: str = ""

    def __post_init__(self) -> None:
        if not _RULE_ID_PATTERN.match(self.id):
            raise AnalysisError(
                f"invalid rule id {self.id!r}: rule ids are one capital "
                "letter plus three digits (e.g. 'L001')"
            )
        if self.severity not in ("error", "warning"):
            raise AnalysisError(
                f"rule {self.id}: severity must be 'error' or 'warning', "
                f"got {self.severity!r}"
            )
        unknown = set(self.categories) - set(CATEGORIES)
        if unknown:
            raise AnalysisError(
                f"rule {self.id}: unknown categories {sorted(unknown)}; "
                f"known: {CATEGORIES}"
            )


@dataclass(frozen=True)
class Checker:
    """One registered checker: a function plus the rules it enforces.

    Attributes
    ----------
    id:
        Unique short identifier (``"locks"``, ``"determinism"``, ...).
    fn:
        The checker body: ``fn(project)`` yielding ``Finding`` objects.
    title:
        One-line human description (``ppdm lint --list-rules``).
    rules:
        The :class:`RuleSpec` tuple this checker may emit.
    module:
        Name of the module that registered the checker.
    """

    id: str
    fn: Callable
    title: str = ""
    rules: tuple = field(default=())
    module: str = ""


class CheckerRegistry:
    """Id-keyed collection of :class:`Checker` specs.

    Registration rejects duplicate checker ids and duplicate rule ids
    across checkers — two checkers fighting over ``"L001"`` would make
    every baseline entry ambiguous — and iteration is always naturally
    sorted by checker id, independent of import order.
    """

    def __init__(self) -> None:
        self._checkers: dict = {}
        self._rules: dict = {}

    def register(self, spec: Checker) -> None:
        if not _ID_PATTERN.match(spec.id):
            raise AnalysisError(
                f"invalid checker id {spec.id!r}: ids are alphanumeric "
                "plus '_', '.', '-'"
            )
        if spec.id in self._checkers:
            raise AnalysisError(
                f"duplicate checker id {spec.id!r}: already registered by "
                f"module {self._checkers[spec.id].module!r}"
            )
        if not spec.rules:
            raise AnalysisError(f"checker {spec.id!r} declares no rules")
        for rule in spec.rules:
            owner = self._rules.get(rule.id)
            if owner is not None:
                raise AnalysisError(
                    f"duplicate rule id {rule.id!r}: already declared by "
                    f"checker {owner[0]!r}"
                )
        self._checkers[spec.id] = spec
        for rule in spec.rules:
            self._rules[rule.id] = (spec.id, rule)

    def __contains__(self, checker_id: str) -> bool:
        return checker_id in self._checkers

    def __len__(self) -> int:
        return len(self._checkers)

    def ids(self) -> tuple:
        """All registered checker ids, naturally sorted."""
        return tuple(sorted(self._checkers, key=_natural_key))

    def get(self, checker_id: str) -> Checker:
        try:
            return self._checkers[checker_id]
        except KeyError:
            known = ", ".join(self.ids()) or "<none>"
            raise AnalysisError(
                f"unknown checker id {checker_id!r}; registered: {known}"
            ) from None

    def checkers(self) -> Iterator[Checker]:
        """Registered checkers in natural id order."""
        for checker_id in self.ids():
            yield self._checkers[checker_id]

    def rule_ids(self) -> tuple:
        """All rule ids across every checker, naturally sorted."""
        return tuple(sorted(self._rules, key=_natural_key))

    def rule(self, rule_id: str) -> RuleSpec:
        """The :class:`RuleSpec` registered under ``rule_id``."""
        try:
            return self._rules[rule_id][1]
        except KeyError:
            known = ", ".join(self.rule_ids()) or "<none>"
            raise AnalysisError(
                f"unknown rule id {rule_id!r}; registered: {known}"
            ) from None

    def select_rules(self, rule_ids: Iterable[str] | None = None) -> tuple:
        """Validate a ``--rule`` selection; ``None`` selects every rule."""
        if rule_ids is None:
            return self.rule_ids()
        selected = []
        for rule_id in rule_ids:
            self.rule(rule_id)  # raises on unknown ids
            if rule_id not in selected:
                selected.append(rule_id)
        return tuple(sorted(selected, key=_natural_key))

    def clear(self) -> None:
        """Forget every registration (test isolation helper)."""
        self._checkers.clear()
        self._rules.clear()


#: process-global registry the :func:`checker` decorator writes to
REGISTRY = CheckerRegistry()


def checker(
    checker_id: str,
    *,
    title: str = "",
    rules: tuple = (),
    registry: CheckerRegistry | None = None,
) -> Callable:
    """Register the decorated function as a static-analysis checker.

    The function keeps working as a plain callable (tests call checkers
    directly on fixture projects); registration only adds it to
    ``registry`` (default: the process-global :data:`REGISTRY`).
    """
    target = REGISTRY if registry is None else registry

    def decorate(fn: Callable) -> Callable:
        spec = Checker(
            id=checker_id,
            fn=fn,
            title=title,
            rules=tuple(rules),
            module=getattr(fn, "__module__", ""),
        )
        target.register(spec)
        fn.checker = spec
        return fn

    return decorate
