"""The HTTP front end for :class:`AggregationService`.

Standard-library only (``http.server``): one ``ppdm serve`` process is a
complete collection endpoint — providers POST randomized disclosures,
analysts GET reconstructed distributions — with the sharded service
behind it.  The threading server gives each connection its own handler
thread; connections are HTTP/1.1 keep-alive, so a bulk client streams
batch after batch over one socket.  Ingestion is contention-free by
construction (striped shard accumulators) and estimation is serialized
by the service itself.

``POST /ingest`` negotiates its wire format via ``Content-Type``:

* ``application/json`` (default) — ``{"batch": {name: [values...]},
  "shard": i?, "classes": [labels...]?}``, the curl-able format,
* ``application/x-ndjson`` — many such objects, one per line,
* ``application/x-ppdm-columns`` — concatenated binary columnar frames
  (:mod:`repro.service.wire`), the zero-copy bulk fast path; version 2
  frames carry an optional class column,
* ``application/x-ppdm-baskets`` — concatenated version 4 basket frames
  (MASK-randomized transactions as varint item-id lists), routed to the
  mining tier when the server was started with ``mining=``.

Endpoints (responses are JSON unless noted):

=========================  ==================================================
``GET /healthz``           liveness + total records absorbed (+ per-worker
                           staleness on a cluster coordinator)
``GET /attributes``        the collected schema (domain, grid, noise)
``GET /stats``             per-attribute record counts (incl. per class),
                           shard and cache stats
``GET /estimate?attribute=NAME``  reconstructed distribution for ``NAME``
``GET /model?strategy=S``  last trained decision tree (``trained_tree``
                           snapshot payload)
``GET /partial``           this server's cumulative merged partials as a
                           binary sync body (``?rows=1`` appends the
                           labeled row buffer; cluster pull path)
``GET /cluster``           worker registry + staleness (coordinator only)
``GET /rules``             last mined rule set (``mined_rules`` snapshot
                           payload)
``POST /ingest``           one or many batches, wire format per Content-Type
``POST /mine``             run level-wise Apriori over the service-held
                           support counts (thresholds in the JSON body)
``POST /train``            grow a decision tree from the aggregates
``POST /snapshot``         persist to the configured snapshot path
``POST /register``         announce a worker to the coordinator
``POST /partial?worker=I`` absorb worker ``I``'s pushed sync body
                           (coordinator only)
=========================  ==================================================

A server created with ``cluster=`` (see
:class:`repro.service.cluster.ClusterCoordinator`) is a *coordinator*:
it refuses direct ``/ingest`` (worker slots would be overwritten by the
next sync), pulls registered workers before ``/estimate`` and
``/train``, and reports cluster health.  Plain servers — including the
cluster's workers — serve ``GET /partial`` so their state can be pulled.

Errors return ``{"error": message}`` with status 400 (validation),
404 (unknown route / untrained model), 413 (body over the configured
size cap), 429 (ingest admission control rejected the body;
``Retry-After`` says when to re-send), 500 (a snapshot write failed —
the previous good snapshot survives), 501 (chunked transfer), or 503
(a cluster operation needs a worker that is unreachable and has never
synced, the server is draining — with ``Retry-After`` — or a fault
plan injected an error).  Any 4xx leaves the connection usable
(except 413/501, which close it — the body cannot be skipped safely)
and absorbs nothing from the failing body; a 429/503 with
``Retry-After`` explicitly guarantees the batch can be re-sent
verbatim without double counting.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.privacy import privacy_of_randomizer
from repro.exceptions import (
    ClusterError,
    DecodedSizeError,
    SnapshotError,
    ValidationError,
)
from repro.service.faults import FaultPlan
from repro.service.resilience import AdmissionController, persist_with_rotation
from repro.service.training import TRAINING_STRATEGIES
from repro.service.wire import (
    CONTENT_TYPE_BASKETS,
    CONTENT_TYPE_COLUMNS,
    CONTENT_TYPE_NDJSON,
    CONTENT_TYPE_PARTIAL,
    WIRE_CODEC_IDENTITY,
    _has_quantized_columns,
    decompress_payload,
    iter_basket_frames,
    iter_labeled_frames,
    iter_labeled_ndjson,
    resolve_codec,
    supported_codecs,
)

__all__ = ["ServiceHTTPServer"]

#: dead handler threads are pruned from the join list this often
_REAP_INTERVAL = 64

#: default request-body cap (bytes); oversized bodies get 413 + close
_DEFAULT_MAX_BODY = 256 * 1024 * 1024


class ServiceHTTPServer:
    """Serve an :class:`~repro.service.AggregationService` over HTTP.

    Parameters
    ----------
    service:
        The aggregation service to expose.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`address`).
    snapshot_path:
        Where ``POST /snapshot`` persists the service; ``None`` disables
        the endpoint (400).
    training:
        Optional :class:`~repro.service.training.TrainingService` over
        ``service``; enables ``POST /train`` / ``GET /model`` and routes
        labeled ingest bodies into the training buffer.  ``None``
        disables the endpoints (400) and labeled batches only feed the
        class-conditional shards.
    cluster:
        Optional :class:`~repro.service.cluster.ClusterCoordinator` over
        ``service``; makes this server a cluster coordinator — worker
        registration/push endpoints come alive, ``/estimate`` and
        ``/train`` pull registered workers first, ``/healthz`` reports
        per-worker staleness, and direct ``/ingest`` is refused.
    mining:
        Optional :class:`~repro.service.mining.MiningService`; enables
        basket ingest bodies (``application/x-ppdm-baskets``),
        ``POST /mine``, and ``GET /rules``.  ``None`` disables them
        (400).  The mining tier holds its own support counters — basket
        bodies never touch the histogram shards.
    max_body_bytes:
        Request bodies larger than this are refused with 413 before any
        byte is read (the connection closes — an unread body cannot be
        skipped safely on a keep-alive socket).
    max_inflight:
        Bound on concurrently-processing ``POST /ingest`` bodies
        (admission control).  Beyond the bound the server sheds load
        with ``429`` + ``Retry-After: retry_after`` *before* touching
        the body, so a rejected batch was never partially absorbed and
        the client re-sends it verbatim.  ``None`` (default) disables
        the gauge.
    retry_after:
        Seconds advertised in ``Retry-After`` on 429 (overload) and 503
        (draining) responses.
    faults:
        Optional :class:`~repro.service.faults.FaultPlan` (or its spec
        dict) driving deterministic chaos injection; ``None`` falls back
        to the ``PPDM_FAULT_PLAN`` environment variable, and no plan
        means no injection.  Faults fire *after* the request body is
        read (keep-alive stays in sync) and *before* any handling (an
        injected drop or 503 absorbed nothing, so re-sending is safe).
    """

    def __init__(
        self, service, host: str = "127.0.0.1", port: int = 0, *,
        snapshot_path=None, training=None, cluster=None, mining=None,
        max_body_bytes: int = _DEFAULT_MAX_BODY,
        max_inflight: int | None = None, retry_after: float = 1.0,
        faults=None,
    ) -> None:
        self.service = service
        self.training = training
        self.cluster = cluster
        self.mining = mining
        if faults is None:
            faults = FaultPlan.from_env()
        elif not isinstance(faults, FaultPlan):
            faults = FaultPlan.from_spec(faults)
        self.faults = faults
        if retry_after < 0:
            raise ValidationError("retry_after must be >= 0")
        self.retry_after = float(retry_after)
        self.admission = (
            AdmissionController(max_inflight, retry_after)
            if max_inflight is not None
            else None
        )
        self._draining = False
        if training is not None and training.service is not service:
            raise ValidationError(
                "the training service must wrap the served "
                "AggregationService instance"
            )
        if cluster is not None and cluster.service is not service:
            raise ValidationError(
                "the cluster coordinator must wrap the served "
                "AggregationService instance"
            )
        if max_body_bytes < 1:
            raise ValidationError(
                f"max_body_bytes must be >= 1, got {max_body_bytes}"
            )
        self.max_body_bytes = int(max_body_bytes)
        self.snapshot_path = snapshot_path
        self._requests_served = 0
        self._served_lock = threading.Lock()
        self._snapshot_lock = threading.Lock()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        # Track handler threads (ThreadingHTTPServer defaults to
        # untracked daemons): server_close() then joins in-flight
        # requests, so max_requests mode and process exit can never kill
        # a response — or a snapshot write — midway.  A long-running
        # server reaps finished threads from that join list every
        # _REAP_INTERVAL requests (see reap_handler_threads) so heavy
        # traffic cannot accumulate dead-thread references.
        self._httpd.daemon_threads = False

    @property
    def address(self) -> tuple:
        """Actual ``(host, port)`` the server is bound to."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def requests_served(self) -> int:
        return self._requests_served

    def serve_forever(self, *, max_requests: int | None = None) -> None:
        """Handle requests until :meth:`shutdown` (or ``max_requests``).

        With ``max_requests`` the server accepts exactly that many
        connections (each may carry several keep-alive requests), then
        joins the handler threads and closes the socket itself; do not
        also call :meth:`shutdown` in that mode.
        """
        if max_requests is None:
            # a tight poll keeps shutdown() latency low (the default
            # 0.5 s poll makes every stop feel sluggish)
            self._httpd.serve_forever(poll_interval=0.05)
        else:
            for _ in range(max_requests):
                self._httpd.handle_request()
            # joins the per-connection handler threads before returning
            self._httpd.server_close()

    def shutdown(self) -> None:
        """Stop a concurrent :meth:`serve_forever` and close the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()

    @property
    def draining(self) -> bool:
        """Is the server refusing new ingest while it shuts down?"""
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new ``POST /ingest`` work with ``503`` + ``Retry-After``.

        Called at the start of a graceful shutdown: in-flight bodies
        finish (handler threads are joined at close), new ingest is shed
        with a retryable status, and read endpoints keep serving — so an
        exit-time snapshot can never race an admitted batch.
        """
        self._draining = True

    def reap_handler_threads(self) -> int:
        """Drop finished handler threads from the join list; return count.

        ``ThreadingHTTPServer`` keeps every non-daemon handler thread in
        a list so ``server_close()`` can join them.  Python 3.11+ prunes
        dead threads itself on every append (``socketserver._Threads``);
        on 3.10 the list is a plain ``list`` that grows by one dead
        ``Thread`` object per connection for the life of the server.
        Called automatically every ``_REAP_INTERVAL`` requests; removal
        is per-element (``list.remove``), so it never races the accept
        loop's concurrent ``append``.
        """
        threads = getattr(self._httpd, "_threads", None)
        if not isinstance(threads, list):
            # daemon-mode sentinel (_NoThreads) or a future stdlib layout
            return 0
        reaped = 0
        for thread in list(threads):
            if not thread.is_alive():
                try:
                    threads.remove(thread)
                except ValueError:  # pragma: no cover - lost a race, fine
                    continue
                reaped += 1
        return reaped

    def persist(self) -> str:
        """Save the service to the configured snapshot path (serialized).

        The single snapshot-write entry point: ``POST /snapshot``, the
        auto-snapshot loop, and the CLI's exit-time save all come
        through here, so two writers can never interleave on the same
        snapshot file.  Writes are atomic with one generation of
        rotation (see
        :func:`~repro.service.resilience.persist_with_rotation`): a
        failed write surfaces as
        :class:`~repro.exceptions.SnapshotError` and leaves the
        previous good snapshot intact under its original name.
        """
        if self.snapshot_path is None:
            raise ValidationError("server started without a snapshot path")
        with self._snapshot_lock:
            if self.faults is not None:
                action = self.faults.decide("snapshot.write")
                if action is not None:
                    raise SnapshotError(
                        f"injected fault: snapshot write refused "
                        f"({action.point} #{action.index})"
                    )
            # Deliberately held across the write: this lock exists only
            # to serialize snapshot writers, no hot path contends on it.
            path = self.snapshot_path
            persist_with_rotation(self.service, path)  # ppdm: ignore[L002]
        return str(self.snapshot_path)

    # ------------------------------------------------------------------
    # Route implementations (handler threads call into these)
    # ------------------------------------------------------------------
    def handle_get(self, path: str, query: dict) -> tuple:
        service = self.service
        if path == "/healthz":
            payload = {
                "status": "ok",
                "records": sum(service.n_seen().values()),
            }
            if self.cluster is not None:
                health = self.cluster.health()
                payload["cluster"] = health
                if health["degraded"]:
                    payload["status"] = "degraded"
            if self._draining:
                payload["status"] = "draining"
            return 200, payload
        if path == "/cluster":
            if self.cluster is None:
                return 400, {
                    "error": "this server is not a cluster coordinator"
                }
            return 200, self.cluster.health()
        if path == "/partial":
            rows = query.get("rows")
            include_rows = bool(rows) and rows[0] not in ("", "0", "false")
            if include_rows and self.training is None:
                return 400, {
                    "error": "?rows=1 needs a server started with training"
                }
            from repro.service.cluster import export_sync_body

            return 200, export_sync_body(
                service, self.training if include_rows else None
            )
        if path == "/attributes":
            return 200, {
                "attributes": [
                    {
                        "name": name,
                        "low": service.spec(name).x_partition.low,
                        "high": service.spec(name).x_partition.high,
                        "n_intervals": service.spec(name).x_partition.n_intervals,
                        "noise": service.spec(name).randomizer.name,
                        "privacy": privacy_of_randomizer(
                            service.spec(name).randomizer,
                            service.spec(name).x_partition.span,
                        ),
                    }
                    for name in service.attributes
                ]
            }
        if path == "/stats":
            cache = service.engine.kernel_cache
            payload = {
                "n_shards": service.n_shards,
                "classes": service.classes,
                "records": service.n_seen(),
                "kernel_cache": {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "size": len(cache),
                },
            }
            if service.classes:
                payload["records_by_class"] = {
                    name: service.n_seen_by_class(name)
                    for name in service.attributes
                }
            if self.training is not None:
                payload["training_records"] = self.training.n_buffered
            if self.admission is not None:
                payload["admission"] = self.admission.stats()
            if self.faults is not None:
                payload["faults"] = self.faults.stats()
            if self.mining is not None:
                payload["mining"] = {
                    "n_items": self.mining.n_items,
                    "keep_prob": self.mining.response.keep_prob,
                    "max_size": self.mining.max_size,
                    "n_shards": len(self.mining.shards),
                    "baskets": self.mining.n_seen,
                }
            return 200, payload
        if path == "/rules":
            if self.mining is None:
                return 400, {"error": "server started without mining"}
            result = self.mining.latest()
            if result is None:
                return 404, {
                    "error": "no mined rules yet: POST /mine first"
                }
            from repro.serialize import to_jsonable

            return 200, to_jsonable(result)
        if path == "/model":
            if self.training is None:
                return 400, {"error": "server started without training"}
            strategies = query.get("strategy")
            strategy = strategies[0] if strategies else None
            if strategy is not None and strategy not in TRAINING_STRATEGIES:
                return 400, {
                    "error": f"unknown strategy {strategy!r}; choose from "
                    f"{list(TRAINING_STRATEGIES)}"
                }
            model = self.training.model(strategy)
            if model is None:
                return 404, {
                    "error": "no trained model yet: POST /train first"
                }
            from repro.serialize import to_jsonable

            return 200, to_jsonable(model)
        if path == "/estimate":
            names = query.get("attribute")
            if not names:
                return 400, {"error": "missing ?attribute=NAME"}
            name = names[0]
            if self.cluster is not None:
                # best-effort pull: an unreachable worker keeps serving
                # from its last-known slot (staleness shows in /healthz)
                self.cluster.sync()
            # warn=False: the cap-hit is reported as converged=false in
            # the payload, and toggling the (process-global) warning
            # filter from handler threads would race other requests.
            result = service.estimate(name, warn=False)
            return 200, {
                "attribute": name,
                "edges": service.spec(name).x_partition.edges.tolist(),
                "probs": result.distribution.probs.tolist(),
                "n_iterations": result.n_iterations,
                "converged": result.converged,
                "chi2_statistic": _finite_or_none(result.chi2_statistic),
                "chi2_threshold": _finite_or_none(result.chi2_threshold),
                "n_seen": service.n_seen(name),
            }
        return 404, {"error": f"unknown route {path!r}"}

    def handle_post(self, path: str, payload) -> tuple:
        if path == "/ingest":
            if self.cluster is not None:
                return 400, {
                    "error": "the coordinator does not ingest; POST "
                    "/ingest to a worker (GET /cluster lists them)"
                }
            if not isinstance(payload, dict) or "batch" not in payload:
                return 400, {"error": 'body must be {"batch": {name: [values]}}'}
            batch = payload["batch"]
            if not isinstance(batch, dict):
                return 400, {"error": "'batch' must map attribute -> values"}
            shard = payload.get("shard")
            if shard is not None and not isinstance(shard, int):
                return 400, {"error": "'shard' must be an integer"}
            classes = payload.get("classes")
            if classes is not None and not isinstance(classes, list):
                return 400, {"error": "'classes' must be a list of labels"}
            ingested, _ = self._absorb_frames([(batch, classes, shard)])
            return 200, {
                "ingested": ingested,
                "records": sum(self.service.n_seen().values()),
            }
        if path == "/train":
            if self.training is None:
                return 400, {
                    "error": "server started without training; restart "
                    "ppdm serve with --train"
                }
            payload = payload if isinstance(payload, dict) else {}
            strategy = payload.get("strategy", "byclass")
            if not isinstance(strategy, str):
                return 400, {"error": "'strategy' must be a string"}
            if self.cluster is not None:
                # strict pull + union train: unreachable workers degrade
                # to last-known state; never-synced ones raise (503)
                model = self.cluster.train(strategy)
            else:
                model = self.training.train(strategy)
            return 200, {
                "strategy": model.strategy,
                "n_train": model.n_train,
                "n_nodes": model.tree.n_nodes,
                "depth": model.tree.depth,
                "fit_seconds": model.fit_seconds,
            }
        if path == "/mine":
            if self.mining is None:
                return 400, {
                    "error": "server started without mining; restart "
                    "ppdm serve with a mining section in the spec"
                }
            payload = payload if isinstance(payload, dict) else {}
            min_support = payload.get("min_support")
            min_confidence = payload.get("min_confidence")
            for name, value in (
                ("min_support", min_support),
                ("min_confidence", min_confidence),
            ):
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    return 400, {
                        "error": f"'{name}' must be a number in (0, 1]"
                    }
            result = self.mining.mine(float(min_support), float(min_confidence))
            return 200, {
                "min_support": result.min_support,
                "min_confidence": result.min_confidence,
                "n_baskets": result.n_baskets,
                "n_itemsets": len(result.itemsets),
                "n_rules": len(result.rules),
                "mine_seconds": result.mine_seconds,
            }
        if path == "/register":
            if self.cluster is None:
                return 400, {
                    "error": "this server is not a cluster coordinator"
                }
            if not isinstance(payload, dict):
                return 400, {
                    "error": 'body must be {"worker": i, "url": "http://..."}'
                }
            return 200, self.cluster.register(
                payload.get("worker"), payload.get("url")
            )
        if path == "/snapshot":
            return 200, {"saved": self.persist()}
        return 404, {"error": f"unknown route {path!r}"}

    def handle_partial_push(self, query: dict, payload: bytes) -> tuple:
        """Absorb one pushed sync body (``POST /partial?worker=I``)."""
        if self.cluster is None:
            return 400, {"error": "this server is not a cluster coordinator"}
        workers = query.get("worker")
        if not workers:
            return 400, {"error": "missing ?worker=ID"}
        try:
            worker = int(workers[0])
        except ValueError:
            return 400, {"error": "'worker' must be an integer id"}
        records = self.cluster.apply_push(worker, payload)
        return 200, {"worker": worker, "records": records}

    def _absorb_frames(self, frames) -> tuple:
        """Validate, prepare, and absorb ``(batch, classes, shard)`` frames.

        All-or-nothing per request body: every frame is decoded,
        validated, and located (pure, lock-free) *before* the first one
        is accumulated — and when training is enabled, labeled frames
        are additionally normalized into full training rows first — so
        a 400 means nothing from the body was absorbed and the client
        can safely re-send the whole thing.  Returns
        ``(records, n_frames)``.
        """
        n_shards = self.service.n_shards
        prepared_frames = []
        for batch, classes, shard in frames:
            if shard is not None and not 0 <= shard < n_shards:
                raise ValidationError(
                    f"shard index {shard} out of range [0, {n_shards})"
                )
            prepared = self.service.prepare(batch, classes)
            rows = None
            if self.training is not None and classes is not None:
                if _has_quantized_columns(batch):
                    # bin indices are not randomized values: buffering
                    # them as training rows would silently corrupt the
                    # tree's per-leaf reconstruction inputs
                    raise ValidationError(
                        "labeled quantized columns cannot feed training; "
                        "send raw float64 columns (wire v1/v2, or v5 "
                        "dtype code 0) when training is enabled"
                    )
                rows = self.training.prepare_rows(batch, classes)
            prepared_frames.append((prepared, rows, shard))
        ingested = 0
        for prepared, rows, shard in prepared_frames:
            if rows is not None:
                # shards and training buffer update as one unit, so a
                # concurrent /train can never see them mid-divergence
                with self.training.sync_lock:
                    ingested += self.service.ingest_prepared(
                        prepared, shard=shard
                    )
                    self.training.absorb_rows(rows)
            else:
                ingested += self.service.ingest_prepared(prepared, shard=shard)
        return ingested, len(prepared_frames)

    def handle_ingest_frames(self, frames) -> tuple:
        """Ingest decoded ``(batch, classes, shard)`` frames (columnar/NDJSON)."""
        if self.cluster is not None:
            return 400, {
                "error": "the coordinator does not ingest; POST /ingest "
                "to a worker (GET /cluster lists them)"
            }
        ingested, n_frames = self._absorb_frames(frames)
        return 200, {
            "ingested": ingested,
            "frames": n_frames,
            "records": sum(self.service.n_seen().values()),
        }

    def handle_ingest_baskets(self, frames) -> tuple:
        """Ingest decoded basket ``(matrix, shard)`` frames (wire v4).

        Same all-or-nothing contract as :meth:`_absorb_frames`: every
        frame is validated against the mining universe and packed into
        codes (pure, lock-free) before the first one is accumulated, so
        a 400 means the mining counters absorbed nothing from the body.
        """
        if self.cluster is not None:
            return 400, {
                "error": "the coordinator does not ingest; POST /ingest "
                "to a worker (GET /cluster lists them)"
            }
        if self.mining is None:
            return 400, {
                "error": "server started without mining; restart ppdm "
                "serve with a mining section in the spec"
            }
        mining = self.mining
        n_shards = len(mining.shards)
        prepared_frames = []
        for matrix, shard in frames:
            if shard is not None and not 0 <= shard < n_shards:
                raise ValidationError(
                    f"shard index {shard} out of range [0, {n_shards})"
                )
            if matrix.shape[1] != mining.n_items:
                raise ValidationError(
                    f"basket frame declares {matrix.shape[1]} items; this "
                    f"server mines a universe of {mining.n_items}"
                )
            prepared_frames.append((mining.prepare(matrix), shard))
        ingested = 0
        for prepared, shard in prepared_frames:
            ingested += mining.ingest_prepared(prepared, shard=shard)
        return 200, {
            "ingested": ingested,
            "frames": len(prepared_frames),
            "baskets": mining.n_seen,
        }


def _finite_or_none(value: float):
    """NaN has no JSON spelling; estimates without a chi2 pass send null."""
    return float(value) if value == value else None


def _make_handler(server: ServiceHTTPServer):
    class Handler(BaseHTTPRequestHandler):
        # keep-alive: one bulk client streams many /ingest bodies over a
        # single connection; every reply carries Content-Length, so the
        # connection stays open until the client closes it
        protocol_version = "HTTP/1.1"
        # idle keep-alive connections drop after this many seconds;
        # handler threads are non-daemon and joined at server close, so
        # without a socket timeout one silent client would make
        # shutdown()/max_requests block forever on the join
        timeout = 30

        def log_message(self, *args) -> None:  # quiet by default
            pass

        def _send(
            self, status: int, body: bytes, ctype: str, close: bool,
            retry_after: float | None = None,
        ) -> None:
            # Count before replying: a client that already holds its
            # response must observe requests_served as including it,
            # whatever the handler thread's scheduling after the socket
            # write (threads are only joined at server close).
            with server._served_lock:
                server._requests_served += 1
                reap = server._requests_served % _REAP_INTERVAL == 0
            if reap:
                server.reap_handler_threads()
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                # integer seconds per RFC 9110; never advertise zero
                self.send_header(
                    "Retry-After", str(max(1, round(retry_after)))
                )
            if close:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)

        def _reply(
            self, status: int, payload: dict, *, close: bool = False,
            retry_after: float | None = None,
        ) -> None:
            self._send(
                status, json.dumps(payload).encode(), "application/json",
                close, retry_after,
            )

        def _inject_fault(self, path: str) -> bool:
            """Consult the fault plan; ``True`` means the request is done.

            Runs after the body has been read (keep-alive stays framed)
            and before any handling (nothing was absorbed, so the
            injected failure is always safe for the client to retry).
            """
            if server.faults is None:
                return False
            action = server.faults.decide("httpd.response", qualifier=path)
            if action is None:
                return False
            if action.kind == "drop":
                # vanish: close the socket without sending a byte
                self.close_connection = True
                return True
            if action.kind == "error":
                self._reply(
                    action.status,
                    {"error": f"injected fault ({action.point} "
                     f"#{action.index})"},
                    retry_after=server.retry_after,
                )
                return True
            if action.kind == "delay":
                time.sleep(action.value)
            return False

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            if self._inject_fault(parsed.path):
                return
            try:
                status, payload = server.handle_get(
                    parsed.path, parse_qs(parsed.query)
                )
            except ValidationError as exc:
                status, payload = 400, {"error": str(exc)}
            except ClusterError as exc:
                status, payload = 503, {"error": str(exc)}
            if isinstance(payload, (bytes, bytearray)):
                # GET /partial: the sync body is binary, not JSON
                self._send(status, bytes(payload), CONTENT_TYPE_PARTIAL, False)
            else:
                self._reply(status, payload)

        def _content_type(self) -> str:
            ctype = self.headers.get("Content-Type", "")
            return ctype.split(";", 1)[0].strip().lower()

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            if self.headers.get("Transfer-Encoding"):
                # only Content-Length bodies are read; leaving chunked
                # bytes on a keep-alive socket would desync every later
                # request, so refuse and drop the connection
                self.close_connection = True
                self._reply(
                    501, {"error": "Transfer-Encoding is not supported; "
                          "send a Content-Length body"},
                    close=True,
                )
                return
            codec = resolve_codec(self.headers.get("Content-Encoding"))
            if codec is None:
                # refuse before reading a byte, like the 501 above: the
                # body cannot be decoded, so skipping it buys nothing
                self.close_connection = True
                token = (self.headers.get("Content-Encoding") or "").strip()
                self._reply(
                    415, {"error": f"unsupported Content-Encoding "
                          f"{token!r}; this server accepts "
                          + ", ".join(supported_codecs())},
                    close=True,
                )
                return
            header = self.headers.get("Content-Length")
            if header is None:
                length = 0
            elif header.isascii() and header.isdigit():
                # canonical ASCII digits only: int() would also accept
                # "+5", "1_000", unicode digits, and stray whitespace,
                # silently reading the wrong number of body bytes
                length = int(header)
            else:
                # an unparseable length leaves an unknown number of body
                # bytes on the socket: refuse and drop the connection
                self.close_connection = True
                self._reply(
                    400, {"error": "Content-Length must be a non-negative "
                          "integer in canonical ASCII digits"},
                    close=True,
                )
                return
            if length > server.max_body_bytes:
                # refuse before reading a byte; the unread body cannot be
                # skipped safely on a keep-alive socket, so close
                self.close_connection = True
                self._reply(
                    413, {"error": f"request body of {length} bytes exceeds "
                          f"the {server.max_body_bytes} byte cap"},
                    close=True,
                )
                return
            raw = self.rfile.read(length) if length else b""
            parsed = urlparse(self.path)
            path = parsed.path
            ctype = self._content_type()
            if self._inject_fault(path):
                return
            admitted = False
            if path == "/ingest":
                # load shedding happens before any decoding: a 429/503
                # here guarantees the body was not (even partially)
                # absorbed, so the client re-sends it verbatim
                if server.draining:
                    self._reply(
                        503,
                        {"error": "server is draining; retry shortly"},
                        retry_after=server.retry_after,
                    )
                    return
                if server.admission is not None:
                    if not server.admission.try_acquire():
                        self._reply(
                            429,
                            {"error": "too many in-flight ingest bodies "
                             f"(max {server.admission.max_inflight}); "
                             "retry later"},
                            retry_after=server.admission.retry_after,
                        )
                        return
                    admitted = True
            try:
                try:
                    if codec != WIRE_CODEC_IDENTITY:
                        # the full wire body is already off the socket, so
                        # every decode failure below leaves the keep-alive
                        # connection usable; the cap bounds the decoded
                        # size the same way Content-Length bounds raw ones
                        raw = decompress_payload(
                            raw, codec, max_decoded=server.max_body_bytes
                        )
                    if path == "/ingest" and ctype == CONTENT_TYPE_BASKETS:
                        status, out = server.handle_ingest_baskets(
                            iter_basket_frames(raw)
                        )
                    elif path == "/ingest" and ctype == CONTENT_TYPE_COLUMNS:
                        status, out = server.handle_ingest_frames(
                            iter_labeled_frames(raw)
                        )
                    elif path == "/ingest" and ctype == CONTENT_TYPE_NDJSON:
                        status, out = server.handle_ingest_frames(
                            iter_labeled_ndjson(raw)
                        )
                    elif path == "/partial" and ctype == CONTENT_TYPE_PARTIAL:
                        status, out = server.handle_partial_push(
                            parse_qs(parsed.query), raw
                        )
                    elif path == "/partial":
                        status, out = 400, {
                            "error": "POST /partial requires Content-Type "
                            f"{CONTENT_TYPE_PARTIAL}"
                        }
                    else:
                        try:
                            payload = json.loads(raw.decode() or "null")
                        except (UnicodeDecodeError, json.JSONDecodeError):
                            self._reply(
                                400, {"error": "body is not valid JSON"}
                            )
                            return
                        status, out = server.handle_post(path, payload)
                except SnapshotError as exc:
                    status, out = 500, {"error": str(exc)}
                except DecodedSizeError as exc:
                    # decompression bomb: entity too large once decoded
                    status, out = 413, {"error": str(exc)}
                except (ValidationError, ValueError) as exc:
                    status, out = 400, {"error": str(exc)}
                except ClusterError as exc:
                    status, out = 503, {"error": str(exc)}
            finally:
                if admitted:
                    server.admission.release()
            self._reply(status, out)

    return Handler
