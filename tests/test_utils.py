"""Tests for RNG plumbing and validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    NotFittedError,
    ReproError,
    SchemaError,
    ValidationError,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_1d_array,
    check_fraction,
    check_positive,
    check_probability_vector,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_reproducible(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_rejects_negative_seed(self):
        with pytest.raises(ValidationError):
            ensure_rng(-1)

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            ensure_rng("seed")

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4

    def test_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_rejects_negative_count(self):
        with pytest.raises(ValidationError):
            spawn_rngs(0, -1)

    def test_deterministic_given_seed(self):
        a1, _ = spawn_rngs(3, 2)
        a2, _ = spawn_rngs(3, 2)
        np.testing.assert_array_equal(a1.random(5), a2.random(5))


class TestValidation:
    def test_check_1d_array_coerces_lists(self):
        arr = check_1d_array([1, 2, 3])
        assert arr.dtype == float

    def test_check_1d_array_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_1d_array(np.zeros((2, 2)))

    def test_check_1d_array_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_1d_array([])

    def test_check_1d_array_allows_empty_when_asked(self):
        assert check_1d_array([], allow_empty=True).size == 0

    def test_check_1d_array_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_1d_array([1.0, float("nan")])

    def test_check_fraction_bounds(self):
        assert check_fraction(1.0) == 1.0
        with pytest.raises(ValidationError):
            check_fraction(0.0)
        assert check_fraction(0.0, inclusive_low=True) == 0.0
        with pytest.raises(ValidationError):
            check_fraction(1.5)

    def test_check_positive(self):
        assert check_positive(2) == 2.0
        with pytest.raises(ValidationError):
            check_positive(0)
        with pytest.raises(ValidationError):
            check_positive(float("inf"))

    def test_check_probability_vector_normalizes_noise(self):
        probs = check_probability_vector([0.5, 0.5 + 1e-9])
        assert probs.sum() == pytest.approx(1.0)

    def test_check_probability_vector_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability_vector([-0.5, 1.5])

    def test_check_probability_vector_rejects_bad_total(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.2, 0.2])


class TestExceptionHierarchy:
    def test_validation_is_repro_and_value_error(self):
        assert issubclass(ValidationError, ReproError)
        assert issubclass(ValidationError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)
        assert issubclass(NotFittedError, ReproError)

    def test_schema_error(self):
        assert issubclass(SchemaError, ReproError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            check_positive(-1)
