"""Tests for the columnar binary wire format (repro.service.wire)."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.service.wire import (
    MAGIC,
    WIRE_VERSION,
    WIRE_VERSION_CLASSES,
    decode_columns,
    decode_labeled,
    encode_columns,
    encode_ndjson,
    iter_frames,
    iter_labeled_frames,
    iter_labeled_ndjson,
    iter_ndjson,
)


class TestColumnarRoundtrip:
    def test_roundtrip_single_attribute(self):
        values = np.linspace(-5.0, 5.0, 100)
        batch, shard = decode_columns(encode_columns({"age": values}))
        assert shard is None
        assert batch["age"].dtype == np.dtype("<f8")
        assert np.array_equal(batch["age"], values)

    def test_roundtrip_multi_attribute_preserves_order(self):
        original = {
            "a": np.array([1.0, 2.0]),
            "b": np.array([3.0]),
            "c": np.array([], dtype=float),
        }
        batch, _ = decode_columns(encode_columns(original))
        assert list(batch) == ["a", "b", "c"]
        for name, values in original.items():
            assert np.array_equal(batch[name], values)

    def test_shard_pin_roundtrips(self):
        _, shard = decode_columns(encode_columns({"x": [0.5]}, shard=3))
        assert shard == 3
        _, shard = decode_columns(encode_columns({"x": [0.5]}))
        assert shard is None

    def test_exact_bit_patterns_survive(self):
        """Raw float64 bytes on the wire: no repr/parse rounding at all."""
        tricky = np.array([0.1, 1e-308, 1.7976931348623157e308, -0.0])
        batch, _ = decode_columns(encode_columns({"x": tricky}))
        assert batch["x"].tobytes() == tricky.tobytes()

    def test_decoded_columns_are_zero_copy_views(self):
        payload = encode_columns({"x": np.arange(1000, dtype=float)})
        batch, _ = decode_columns(payload)
        assert not batch["x"].flags.owndata  # a view into the body
        assert not batch["x"].flags.writeable

    def test_unicode_attribute_names(self):
        batch, _ = decode_columns(encode_columns({"âge": [1.0]}))
        assert list(batch) == ["âge"]

    def test_empty_batch_roundtrips(self):
        batch, shard = decode_columns(encode_columns({}))
        assert batch == {}
        assert shard is None

    def test_iter_frames_concatenated(self):
        body = b"".join(
            [
                encode_columns({"x": [0.1, 0.2]}),
                encode_columns({"x": [0.3]}, shard=1),
                encode_columns({"y": [9.0]}, shard=0),
            ]
        )
        frames = list(iter_frames(body))
        assert [(list(b), s) for b, s in frames] == [
            (["x"], None),
            (["x"], 1),
            (["y"], 0),
        ]
        assert frames[0][0]["x"].size == 2

    def test_iter_frames_empty_body(self):
        assert list(iter_frames(b"")) == []


class TestColumnarErrors:
    def test_bad_magic(self):
        frame = bytearray(encode_columns({"x": [0.5]}))
        frame[:4] = b"NOPE"
        with pytest.raises(ValidationError, match="magic"):
            decode_columns(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(encode_columns({"x": [0.5]}))
        struct.pack_into("<H", frame, 4, WIRE_VERSION_CLASSES + 1)
        with pytest.raises(ValidationError, match="version"):
            decode_columns(bytes(frame))

    def test_truncated_header(self):
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(MAGIC)

    def test_truncated_column_data(self):
        frame = encode_columns({"x": [0.5, 0.6, 0.7]})
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(frame[:-8])

    def test_truncated_attribute_table(self):
        frame = encode_columns({"abcdef": [0.5]})
        header_plus_partial_table = frame[: struct.calcsize("<4sHHi") + 3]
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(header_plus_partial_table)

    def test_trailing_bytes_rejected_by_single_decode(self):
        frame = encode_columns({"x": [0.5]})
        with pytest.raises(ValidationError, match="trailing"):
            decode_columns(frame + b"\x00")

    def test_duplicate_attribute_rejected(self):
        good = encode_columns({"x": [0.5]})
        # craft a 2-entry table that names "x" twice
        table_entry = struct.pack("<H", 1) + b"x" + struct.pack("<Q", 1)
        column = np.array([0.5]).tobytes()
        frame = (
            struct.pack("<4sHHi", MAGIC, WIRE_VERSION, 2, -1)
            + table_entry * 2
            + column * 2
        )
        assert decode_columns(good)  # sanity: the crafting matches the layout
        with pytest.raises(ValidationError, match="duplicate"):
            decode_columns(frame)

    def test_encode_rejects_non_dict(self):
        with pytest.raises(ValidationError):
            encode_columns([("x", [0.5])])

    def test_encode_rejects_2d_values(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            encode_columns({"x": [[0.5, 0.6]]})

    def test_encode_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            encode_columns({"": [0.5]})


class TestClassColumn:
    """Wire version 2: the optional class column."""

    def test_labeled_roundtrip(self):
        values = np.linspace(0.0, 1.0, 10)
        classes = np.arange(10) % 3
        frame = encode_columns({"x": values}, classes=classes, shard=1)
        batch, decoded, shard = decode_labeled(frame)
        assert np.array_equal(batch["x"], values)
        assert decoded.dtype == np.dtype("<i4")
        assert np.array_equal(decoded, classes)
        assert shard == 1

    def test_unlabeled_encode_is_byte_identical_v1(self):
        """No classes -> the exact PR 4 byte layout (old servers decode it)."""
        frame = encode_columns({"x": [0.5, 0.6]}, shard=2)
        assert struct.unpack_from("<H", frame, 4)[0] == WIRE_VERSION

    def test_labeled_encode_is_v2(self):
        frame = encode_columns({"x": [0.5]}, classes=[1])
        assert struct.unpack_from("<H", frame, 4)[0] == WIRE_VERSION_CLASSES

    def test_decode_labeled_accepts_v1(self):
        batch, classes, shard = decode_labeled(encode_columns({"x": [0.5]}))
        assert classes is None
        assert shard is None
        assert batch["x"].tolist() == [0.5]

    def test_class_column_is_zero_copy_view(self):
        frame = encode_columns({"x": [0.5]}, classes=[1])
        _, classes, _ = decode_labeled(frame)
        assert not classes.flags.owndata
        assert not classes.flags.writeable

    def test_v1_and_v2_frames_mix_in_one_body(self):
        body = encode_columns({"x": [0.1]}) + encode_columns(
            {"x": [0.9]}, classes=[1]
        )
        frames = list(iter_labeled_frames(body))
        assert frames[0][1] is None
        assert frames[1][1].tolist() == [1]

    def test_unlabeled_decoders_reject_labeled_frames(self):
        frame = encode_columns({"x": [0.5]}, classes=[0])
        with pytest.raises(ValidationError, match="class column"):
            decode_columns(frame)
        with pytest.raises(ValidationError, match="class column"):
            list(iter_frames(frame))

    def test_encode_rejects_row_count_mismatch(self):
        with pytest.raises(ValidationError, match="class"):
            encode_columns({"x": [0.5, 0.6]}, classes=[0])

    def test_empty_class_column_encodes_unlabeled_v1(self):
        """classes=[] carries no labels: the plain v1 frame, not an error."""
        frame = encode_columns({"x": [0.5, 0.6]}, classes=[])
        assert struct.unpack_from("<H", frame, 4)[0] == WIRE_VERSION
        batch, classes, _ = decode_labeled(frame)
        assert classes is None
        assert batch["x"].tolist() == [0.5, 0.6]

    def test_encode_rejects_non_integer_classes(self):
        with pytest.raises(ValidationError, match="integer"):
            encode_columns({"x": [0.5]}, classes=[0.5])
        with pytest.raises(ValidationError):
            encode_columns({"x": [0.5]}, classes=[[0]])

    def test_decode_rejects_column_class_count_mismatch(self):
        """A crafted v2 frame whose column row count disagrees with the
        class column is rejected at the table, before any allocation."""
        frame = bytearray(encode_columns({"x": [0.5, 0.6]}, classes=[0, 1]))
        # attribute table starts after the 12-byte header + 8-byte class
        # count; bump the row count of "x" (u16 len + 1 name byte in)
        struct.pack_into("<Q", frame, 12 + 8 + 2 + 1, 3)
        with pytest.raises(ValidationError, match="class column"):
            decode_labeled(bytes(frame))

    def test_truncated_class_column(self):
        frame = encode_columns({"x": [0.5]}, classes=[0])
        # drop the final float column AND the tail of the class column
        with pytest.raises(ValidationError, match="truncated"):
            decode_labeled(frame[: len(frame) - 8 - 2])

    def test_truncated_v2_header(self):
        frame = encode_columns({"x": [0.5]}, classes=[0])
        with pytest.raises(ValidationError, match="truncated"):
            decode_labeled(frame[:14])

    def test_oversized_class_count_rejected_without_allocation(self):
        frame = bytearray(encode_columns({"x": [0.5]}, classes=[0]))
        struct.pack_into("<Q", frame, 12, 2**60)  # absurd class row count
        with pytest.raises(ValidationError):
            decode_labeled(bytes(frame))

    def test_oversized_row_count_rejected_without_allocation(self):
        frame = bytearray(encode_columns({"abc": [0.5]}))
        # row count sits after header + u16 name length + 3 name bytes
        struct.pack_into("<Q", frame, 12 + 2 + 3, 2**60)
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(bytes(frame))


class TestDecodeFuzz:
    """Randomized malformed inputs: the decoder must always answer with a
    ValidationError (or a successful decode) — never another exception
    type, a hang, or unbounded allocation.  Failing seeds print via the
    deterministic loop below (fixed base seed, indexed cases)."""

    BASE_SEED = 987_654

    def _frames(self):
        return [
            encode_columns({"x": [0.5, 0.6], "y": [1.0, 2.0]}, shard=1),
            encode_columns({"x": [0.5, 0.6]}, classes=[0, 1]),
            encode_columns({"x": []}, classes=[]),
            encode_columns({"âge": np.linspace(0, 1, 31).tolist()}, classes=[1] * 31),
        ]

    def test_truncation_fuzz(self):
        import random

        rng = random.Random(self.BASE_SEED)
        for index, frame in enumerate(self._frames()):
            cuts = {rng.randrange(len(frame)) for _ in range(40)}
            for cut in sorted(cuts):
                try:
                    decode_labeled(frame[:cut])
                except ValidationError:
                    continue
                except Exception as exc:  # noqa: BLE001
                    raise AssertionError(
                        f"frame {index} truncated at {cut} raised "
                        f"{type(exc).__name__}: {exc} (seed {self.BASE_SEED})"
                    ) from exc
                assert cut == len(frame), (
                    f"frame {index}: truncation at {cut} decoded cleanly "
                    f"(seed {self.BASE_SEED})"
                )

    def test_corruption_fuzz(self):
        import random

        rng = random.Random(self.BASE_SEED + 1)
        frames = self._frames()
        for case in range(150):
            frame = bytearray(rng.choice(frames))
            for _ in range(rng.randint(1, 4)):
                frame[rng.randrange(len(frame))] = rng.randrange(256)
            try:
                batch, classes, shard = decode_labeled(bytes(frame))
            except ValidationError:
                continue
            except Exception as exc:  # noqa: BLE001
                raise AssertionError(
                    f"corruption case {case} raised {type(exc).__name__}: "
                    f"{exc} (seed {self.BASE_SEED + 1})"
                ) from exc
            # a surviving decode must still be structurally sound
            for values in batch.values():
                assert values.ndim == 1
            if classes is not None:
                assert classes.ndim == 1


class TestNDJSON:
    def test_roundtrip(self):
        body = encode_ndjson([({"x": [0.5, 0.6]}, None), ({"y": [1.0]}, 2)])
        frames = list(iter_ndjson(body))
        assert frames == [({"x": [0.5, 0.6]}, None), ({"y": [1.0]}, 2)]

    def test_blank_lines_skipped(self):
        body = b'\n{"batch": {"x": [0.5]}}\n\n'
        assert len(list(iter_ndjson(body))) == 1

    def test_empty_body(self):
        assert list(iter_ndjson(b"")) == []
        assert encode_ndjson([]) == b""

    def test_bad_json_line_names_the_line(self):
        body = b'{"batch": {"x": [0.5]}}\nnot json\n'
        with pytest.raises(ValidationError, match="line 2"):
            list(iter_ndjson(body))

    def test_line_without_batch_rejected(self):
        with pytest.raises(ValidationError, match="batch"):
            list(iter_ndjson(b'{"values": [1.0]}\n'))

    def test_batch_must_be_dict(self):
        with pytest.raises(ValidationError):
            list(iter_ndjson(b'{"batch": [1.0]}\n'))

    def test_labeled_lines_roundtrip(self):
        body = (
            b'{"batch": {"x": [0.5]}, "classes": [1]}\n'
            b'{"batch": {"x": [0.9]}}\n'
        )
        frames = list(iter_labeled_ndjson(body))
        assert frames == [({"x": [0.5]}, [1], None), ({"x": [0.9]}, None, None)]

    def test_unlabeled_iterator_rejects_classes(self):
        with pytest.raises(ValidationError, match="classes"):
            list(iter_ndjson(b'{"batch": {"x": [0.5]}, "classes": [1]}\n'))

    def test_classes_must_be_list(self):
        with pytest.raises(ValidationError, match="classes"):
            list(iter_labeled_ndjson(b'{"batch": {"x": [0.5]}, "classes": 1}\n'))
