"""Known-bad fixture for the wire-format checker (W001/W002).

Parsed by ``tests/test_analysis.py`` under a ``src/repro/...`` relpath
so the library-only wire rules apply; never imported.
"""

import struct

MAGIC = b"PPDM"  # W002: magic bytes re-defined outside the wire module
WIRE_VERSION = 9  # W002: reserved name defined outside the wire module

_HEADER = struct.Struct("<4sHHi")  # W001 + W002: duplicated layout


def pack_frame(n):
    return struct.pack("<Q", n)  # W001: hand-rolled packing


WIRE_CODEC_ZSTD = "zstd"  # W002: codec token re-declared outside the wire module
