"""Tests for the association-mining extension (Apriori + randomized response)."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.mining import (
    MaskMiner,
    RandomizedResponse,
    association_rules,
    frequent_itemsets,
    generate_baskets,
)
from repro.mining.apriori import support


@pytest.fixture(scope="module")
def planted_baskets():
    return generate_baskets(6_000, 10, seed=17)


class TestApriori:
    def test_matches_bruteforce_on_small_data(self, rng):
        baskets = rng.random((200, 5)) < 0.4
        mined = frequent_itemsets(baskets, 0.2)
        # brute force every itemset up to size 5
        for size in range(1, 6):
            for combo in combinations(range(5), size):
                s = support(baskets, combo)
                itemset = frozenset(combo)
                if s >= 0.2:
                    assert itemset in mined, itemset
                    assert mined[itemset] == pytest.approx(s)
                else:
                    assert itemset not in mined

    def test_planted_patterns_found(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.15)
        assert frozenset({0, 1}) in mined
        assert frozenset({2, 3, 4}) in mined

    def test_downward_closure(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        for itemset in mined:
            for item in itemset:
                assert itemset - {item} in mined or len(itemset) == 1

    def test_max_size_respected(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1, max_size=2)
        assert all(len(itemset) <= 2 for itemset in mined)

    def test_support_bounds(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.05)
        assert all(0.05 <= s <= 1.0 for s in mined.values())

    def test_empty_itemset_support(self, planted_baskets):
        assert support(planted_baskets, set()) == 1.0

    def test_out_of_range_item_rejected(self, planted_baskets):
        with pytest.raises(ValidationError):
            support(planted_baskets, {99})

    def test_rejects_bad_matrix(self):
        with pytest.raises(ValidationError):
            frequent_itemsets(np.zeros(5), 0.1)
        with pytest.raises(ValidationError):
            frequent_itemsets(np.zeros((0, 3)), 0.1)


class TestAssociationRules:
    def test_rules_from_planted_pattern(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        rules = association_rules(mined, 0.5)
        pairs = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))) for r in rules
        }
        assert ((0,), (1,)) in pairs or ((1,), (0,)) in pairs

    def test_confidence_bounds(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        for rule in association_rules(mined, 0.3):
            assert 0.3 <= rule.confidence <= 1.0
            assert rule.support <= 1.0
            assert rule.lift > 0

    def test_sorted_by_confidence(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        rules = association_rules(mined, 0.2)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_lift_of_planted_rule_above_one(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        rules = association_rules(mined, 0.5)
        planted = [
            r for r in rules
            if r.antecedent == frozenset({0}) and r.consequent == frozenset({1})
        ]
        assert planted and planted[0].lift > 1.5


class TestRandomizedResponse:
    def test_rejects_half(self):
        with pytest.raises(ValidationError):
            RandomizedResponse(0.5)

    def test_channel_is_stochastic(self):
        channel = RandomizedResponse(0.8).channel
        np.testing.assert_allclose(channel.sum(axis=0), 1.0)

    def test_flip_rate(self, rng):
        rr = RandomizedResponse(0.9)
        baskets = np.zeros((20_000, 3), dtype=bool)
        disclosed = rr.randomize(baskets, seed=rng)
        assert disclosed.mean() == pytest.approx(0.1, abs=0.01)

    def test_keep_prob_one_is_identity(self, planted_baskets):
        rr = RandomizedResponse(1.0)
        disclosed = rr.randomize(planted_baskets, seed=0)
        np.testing.assert_array_equal(disclosed, planted_baskets)

    def test_deniability(self):
        assert RandomizedResponse(0.8).privacy_of_bit() == pytest.approx(0.2)


class TestMaskMiner:
    def test_support_recovery_single_items(self, planted_baskets):
        rr = RandomizedResponse(0.9)
        disclosed = rr.randomize(planted_baskets, seed=3)
        miner = MaskMiner(rr)
        for item in range(5):
            true = support(planted_baskets, {item})
            estimate = miner.estimate_support(disclosed, {item})
            assert estimate == pytest.approx(true, abs=0.03)

    def test_support_recovery_pairs(self, planted_baskets):
        rr = RandomizedResponse(0.9)
        disclosed = rr.randomize(planted_baskets, seed=4)
        miner = MaskMiner(rr)
        true = support(planted_baskets, {0, 1})
        estimate = miner.estimate_support(disclosed, {0, 1})
        assert estimate == pytest.approx(true, abs=0.04)

    def test_estimate_beats_naive_support(self, planted_baskets):
        """Counting the randomized data directly is badly biased."""
        rr = RandomizedResponse(0.85)
        disclosed = rr.randomize(planted_baskets, seed=5)
        miner = MaskMiner(rr)
        true = support(planted_baskets, {2, 3, 4})
        naive = support(disclosed, {2, 3, 4})
        estimate = miner.estimate_support(disclosed, {2, 3, 4})
        assert abs(estimate - true) < abs(naive - true)

    def test_frequent_itemsets_recovered(self, planted_baskets):
        rr = RandomizedResponse(0.95)
        disclosed = rr.randomize(planted_baskets, seed=6)
        mined = MaskMiner(rr).frequent_itemsets(disclosed, 0.15)
        assert frozenset({0, 1}) in mined
        assert frozenset({2, 3, 4}) in mined

    def test_max_size_enforced(self, planted_baskets):
        rr = RandomizedResponse(0.9)
        miner = MaskMiner(rr, max_size=2)
        with pytest.raises(ValidationError):
            miner.estimate_support(planted_baskets, {0, 1, 2})

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValidationError):
            MaskMiner(RandomizedResponse(0.9), max_size=0)

    def test_empty_itemset(self, planted_baskets):
        miner = MaskMiner(RandomizedResponse(0.9))
        assert miner.estimate_support(planted_baskets, set()) == 1.0


class TestBasketGenerator:
    def test_shape_and_dtype(self):
        baskets = generate_baskets(100, 7, seed=0)
        assert baskets.shape == (100, 7)
        assert baskets.dtype == bool

    def test_reproducible(self):
        a = generate_baskets(50, 6, seed=1)
        b = generate_baskets(50, 6, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_planted_support_approximate(self):
        baskets = generate_baskets(20_000, 10, seed=2)
        # pattern (0,1) at 0.35 plus background coincidences
        assert support(baskets, {0, 1}) == pytest.approx(0.35, abs=0.05)

    def test_rejects_bad_pattern(self):
        with pytest.raises(ValidationError):
            generate_baskets(10, 3, patterns=(((5,), 0.5),))
        with pytest.raises(ValidationError):
            generate_baskets(10, 3, patterns=(((), 0.5),))
        with pytest.raises(ValidationError):
            generate_baskets(10, 3, patterns=(((0,), 1.5),))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValidationError):
            generate_baskets(0, 5)
        with pytest.raises(ValidationError):
            generate_baskets(5, 5, background=1.5)


@given(
    keep_prob=st.sampled_from([0.7, 0.8, 0.9, 0.95]),
    seed=st.integers(0, 500),
)
def test_property_estimator_unbiasedness(keep_prob, seed):
    """Across random data, channel inversion stays near the truth."""
    rng = np.random.default_rng(seed)
    baskets = rng.random((3_000, 4)) < rng.uniform(0.1, 0.6)
    rr = RandomizedResponse(keep_prob)
    disclosed = rr.randomize(baskets, seed=rng)
    miner = MaskMiner(rr)
    true = support(baskets, {0, 1})
    estimate = miner.estimate_support(disclosed, {0, 1})
    # tolerance widens as keep_prob drops (variance grows)
    tolerance = 0.05 if keep_prob >= 0.9 else 0.12
    assert abs(estimate - true) < tolerance
