"""Discrete distributions over a :class:`~repro.core.partition.Partition`.

The output of distribution reconstruction (§3) is a probability per
interval; :class:`HistogramDistribution` packages that vector with its
partition and provides the comparisons (L1/L2 distance, expected counts)
used by the experiment harness and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import Partition
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability_vector


@dataclass(frozen=True)
class HistogramDistribution:
    """A probability mass function over the intervals of a partition.

    Examples
    --------
    >>> from repro.core import HistogramDistribution, Partition
    >>> part = Partition.uniform(0.0, 1.0, 4)
    >>> dist = HistogramDistribution.from_values([0.1, 0.2, 0.6, 0.7], part)
    >>> dist.probs.tolist()
    [0.5, 0.0, 0.5, 0.0]
    >>> float(dist.mean())
    0.375
    >>> float(dist.l1_distance(HistogramDistribution.uniform(part)))
    1.0
    """

    partition: Partition
    probs: np.ndarray

    def __post_init__(self) -> None:
        probs = check_probability_vector(self.probs, "probs")
        if probs.size != self.partition.n_intervals:
            raise ValidationError(
                f"probs has {probs.size} entries but the partition has "
                f"{self.partition.n_intervals} intervals"
            )
        object.__setattr__(self, "probs", probs)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values, partition: Partition) -> "HistogramDistribution":
        """Empirical distribution of ``values`` on ``partition``."""
        counts = partition.histogram(values)
        total = counts.sum()
        if total == 0:
            raise ValidationError("cannot build a distribution from zero values")
        return cls(partition, counts / total)

    @classmethod
    def uniform(cls, partition: Partition) -> "HistogramDistribution":
        """The uniform distribution (the reconstruction algorithm's prior)."""
        m = partition.n_intervals
        return cls(partition, np.full(m, 1.0 / m))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_intervals(self) -> int:
        """Number of intervals (same as the underlying partition)."""
        return self.partition.n_intervals

    def density(self) -> np.ndarray:
        """Per-interval probability density (prob / width)."""
        return self.probs / self.partition.widths

    def mean(self) -> float:
        """Expected value using interval midpoints."""
        return float(np.dot(self.probs, self.partition.midpoints))

    def cdf(self) -> np.ndarray:
        """Cumulative probability at each right interval edge."""
        return np.cumsum(self.probs)

    def expected_counts(self, n: int) -> np.ndarray:
        """Expected interval occupancy for a sample of size ``n``."""
        if n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        return self.probs * n

    def integer_counts(self, n: int) -> np.ndarray:
        """Round :meth:`expected_counts` to integers summing exactly to ``n``.

        Uses largest-remainder rounding, which is what the record-correction
        step (§4) requires: every record must land in exactly one interval.
        """
        expected = self.expected_counts(n)
        base = np.floor(expected).astype(np.int64)
        shortfall = int(n - base.sum())
        if shortfall > 0:
            remainders = expected - base
            # Stable pick of the largest remainders.
            top = np.argsort(-remainders, kind="stable")[:shortfall]
            base[top] += 1
        return base

    def sample(self, n: int, seed=None) -> np.ndarray:
        """Draw ``n`` values: pick intervals by ``probs``, then uniform inside."""
        rng = ensure_rng(seed)
        idx = rng.choice(self.n_intervals, size=int(n), p=self.probs)
        left = self.partition.edges[idx]
        width = self.partition.widths[idx]
        return left + rng.random(int(n)) * width

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def _check_comparable(self, other: "HistogramDistribution") -> None:
        if self.n_intervals != other.n_intervals:
            raise ValidationError(
                "distributions have different interval counts: "
                f"{self.n_intervals} vs {other.n_intervals}"
            )

    def l1_distance(self, other: "HistogramDistribution") -> float:
        """Total absolute difference of interval probabilities (in [0, 2])."""
        self._check_comparable(other)
        return float(np.abs(self.probs - other.probs).sum())

    def l2_distance(self, other: "HistogramDistribution") -> float:
        """Euclidean distance of interval probabilities."""
        self._check_comparable(other)
        return float(np.linalg.norm(self.probs - other.probs))

    def total_variation(self, other: "HistogramDistribution") -> float:
        """Total-variation distance (half the L1 distance, in [0, 1])."""
        return 0.5 * self.l1_distance(other)

    def restricted_to(self, partition: Partition) -> "HistogramDistribution":
        """Re-express this distribution on another equal-width partition.

        Intervals of ``self`` are mapped to intervals of ``partition`` by
        midpoint; probability falling outside the target domain is clipped
        into its boundary intervals.  Used to compare a reconstruction on an
        expanded grid against the original-domain distribution.
        """
        idx = partition.locate(self.partition.midpoints)
        probs = np.zeros(partition.n_intervals)
        np.add.at(probs, idx, self.probs)
        return HistogramDistribution(partition, probs)
