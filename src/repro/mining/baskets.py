"""Synthetic basket generator with planted frequent itemsets.

Evaluating support recovery needs ground truth: baskets whose frequent
itemsets are known by construction.  The generator plants a few correlated
itemsets on top of independent background noise, loosely following the
classic synthetic-basket methodology (random patterns embedded into
transactions).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng

#: default planted patterns: (item tuple, probability a basket contains it)
DEFAULT_PATTERNS = (((0, 1), 0.35), ((2, 3, 4), 0.25))


def generate_baskets(
    n: int,
    n_items: int,
    *,
    background: float = 0.08,
    patterns=DEFAULT_PATTERNS,
    seed=None,
) -> np.ndarray:
    """Generate an ``(n, n_items)`` boolean basket matrix.

    Parameters
    ----------
    n / n_items:
        Matrix dimensions.
    background:
        Independent probability of each item appearing on its own.
    patterns:
        Iterable of ``(items, probability)`` pairs; with probability
        ``probability`` a basket contains *all* of ``items``.  Planted
        patterns are what mining should find.
    seed:
        Seed / generator.
    """
    if n < 1 or n_items < 1:
        raise ValidationError(f"need n >= 1 and n_items >= 1, got {n}, {n_items}")
    if not 0.0 <= background <= 1.0:
        raise ValidationError(f"background must be in [0, 1], got {background}")
    rng = ensure_rng(seed)
    matrix = rng.random((n, n_items)) < background
    for items, probability in patterns:
        items = tuple(items)
        if not items:
            raise ValidationError("planted patterns must be non-empty")
        if max(items) >= n_items or min(items) < 0:
            raise ValidationError(
                f"pattern {items} out of range for {n_items} items"
            )
        if not 0.0 <= probability <= 1.0:
            raise ValidationError(
                f"pattern probability must be in [0, 1], got {probability}"
            )
        hit = rng.random(n) < probability
        matrix[np.ix_(hit, items)] = True
    return matrix


def transactions_to_matrix(transactions, n_items: int) -> np.ndarray:
    """Build an ``(n, n_items)`` boolean matrix from item-id lists.

    The inverse of :func:`matrix_to_transactions` and the shape bridge
    between transaction files (one list of item ids per basket — what
    ``ppdm ingest --baskets`` reads) and the boolean matrices the mining
    stack and the basket wire operate on.  Duplicate ids within one
    transaction are tolerated (a basket either contains an item or not).

    Examples
    --------
    >>> from repro.mining.baskets import transactions_to_matrix
    >>> transactions_to_matrix([[0, 2], []], 3).tolist()
    [[True, False, True], [False, False, False]]
    """
    if n_items < 1:
        raise ValidationError(f"need n_items >= 1, got {n_items}")
    transactions = list(transactions)
    if not transactions:
        raise ValidationError("need at least one transaction")
    matrix = np.zeros((len(transactions), int(n_items)), dtype=bool)
    for i, transaction in enumerate(transactions):
        for item in transaction:
            if not isinstance(item, (int, np.integer)) or isinstance(item, bool):
                raise ValidationError(
                    f"transaction {i}: item ids must be integers, "
                    f"got {item!r}"
                )
            if not 0 <= item < n_items:
                raise ValidationError(
                    f"transaction {i}: item {item} out of range for "
                    f"{n_items} items"
                )
            matrix[i, item] = True
    return matrix


def matrix_to_transactions(matrix) -> list:
    """List the sorted item ids of each row of a boolean basket matrix.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.mining.baskets import matrix_to_transactions
    >>> matrix_to_transactions(np.array([[True, False, True]]))
    [[0, 2]]
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.dtype != np.bool_:
        raise ValidationError(
            f"need a 2-D boolean matrix, got shape {arr.shape}, "
            f"dtype {arr.dtype}"
        )
    return [[int(j) for j in np.nonzero(row)[0]] for row in arr]
