"""Exception-discipline lint (rules E001, E002).

The library's contract is that every deliberate failure derives from
:class:`repro.exceptions.ReproError`, so callers catch library failures
with one ``except`` clause while genuine bugs still propagate:

* **E001 — builtin exception raised in library code.**  ``raise
  ValueError(...)`` from a public ``repro`` API is invisible to
  ``except ReproError`` and indistinguishable from an internal bug.
  Raise :class:`~repro.exceptions.ValidationError` and friends instead.
  ``NotImplementedError`` (abstract methods), ``AssertionError``, and
  ``SystemExit`` (CLI control flow) are allowed; ``exceptions.py``
  itself is exempt.
* **E002 — unguarded decode subscript.**  Decode-shaped functions
  (``from_*``, ``load*``, ``restore*``, ``decode*``) index straight
  into their payload argument.  On malformed input the caller gets a
  bare ``KeyError('kind')`` instead of a
  :class:`~repro.exceptions.SerializationError` naming the problem.
  Subscripts of a parameter must sit inside a ``try`` that catches
  ``KeyError``/``LookupError``/``TypeError``/``ValueError`` (or
  broader) and re-raises a library error.  Slicing and subscript
  *stores* are exempt — neither raises ``KeyError``.

Examples
--------
>>> from repro.analysis.raising import check_raising
>>> from repro.analysis.walker import parse_source, Project
>>> bad = parse_source(
...     "def from_payload(payload):\\n"
...     "    return payload['kind']\\n",
...     "src/repro/demo.py", "library")
>>> [f.rule for f in check_raising(Project([bad]))]
['E002']
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import RuleSpec, checker
from repro.analysis.walker import ParsedModule, Project, iter_scoped

__all__ = ["check_raising"]

#: where the sanctioned hierarchy lives — exempt from E001 by definition
_EXCEPTIONS_HOME = "src/repro/exceptions.py"

#: builtin exceptions library code must not raise directly
_FORBIDDEN_RAISES = {
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "RuntimeError",
    "OSError",
    "IOError",
    "Exception",
    "BaseException",
    "ArithmeticError",
    "ZeroDivisionError",
    "AttributeError",
    "StopIteration",
    "BufferError",
    "EOFError",
    "OverflowError",
    "UnicodeDecodeError",
    "UnicodeEncodeError",
}

#: handler types that count as guarding a decode subscript
_GUARDING_CATCHES = {
    "KeyError",
    "LookupError",
    "IndexError",
    "TypeError",
    "ValueError",
    "Exception",
    "BaseException",
}

#: function-name prefixes marking a decode-shaped API (after
#: stripping leading underscores)
_DECODE_PREFIXES = ("from_", "load", "restore", "decode")

#: scopes where raising AttributeError is the attribute protocol
#: itself, not a failure-contract violation
_ATTRIBUTE_PROTOCOL = {
    "__getattr__",
    "__getattribute__",
    "__setattr__",
    "__delattr__",
}


def _raised_name(node: ast.Raise) -> str | None:
    """The bare name being raised (``X`` or ``X(...)``), if resolvable."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _handler_catches(handler: ast.ExceptHandler) -> set:
    """Exception names a single ``except`` clause catches."""
    node = handler.type
    if node is None:
        return {"BaseException"}
    names = []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if isinstance(element, ast.Name):
            names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
    return set(names)


def _is_decode_function(name: str) -> bool:
    stripped = name.lstrip("_")
    return any(stripped.startswith(prefix) for prefix in _DECODE_PREFIXES)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set:
    args = node.args
    names = [
        a.arg
        for group in (args.posonlyargs, args.args, args.kwonlyargs)
        for a in group
    ]
    for star in (args.vararg, args.kwarg):
        if star is not None:
            names.append(star.arg)
    return {n for n in names if n not in ("self", "cls")}


def _unguarded_subscripts(
    node: ast.AST, params: set, guarded: bool
) -> Iterator[ast.Subscript]:
    """Yield non-slice subscripts of a parameter outside a guarding try."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # nested scopes judged on their own names
        if isinstance(child, ast.Try):
            catches: set = set()
            for handler in child.handlers:
                catches |= _handler_catches(handler)
            body_guarded = guarded or bool(catches & _GUARDING_CATCHES)
            for stmt in child.body:
                yield from _unguarded_subscripts(stmt, params, body_guarded)
            for handler in child.handlers:
                yield from _unguarded_subscripts(handler, params, guarded)
            for stmt in child.orelse + child.finalbody:
                yield from _unguarded_subscripts(stmt, params, guarded)
            continue
        if (
            isinstance(child, ast.Subscript)
            and not guarded
            and isinstance(child.ctx, ast.Load)
            and not isinstance(child.slice, ast.Slice)
            and isinstance(child.value, ast.Name)
            and child.value.id in params
        ):
            yield child
        yield from _unguarded_subscripts(child, params, guarded)


def _check_module_raises(module: ParsedModule) -> Iterator[Finding]:
    assert module.tree is not None
    for node, scope in iter_scoped(module.tree):
        if not isinstance(node, ast.Raise):
            continue
        name = _raised_name(node)
        if name == "AttributeError" and (
            scope.rpartition(".")[2] in _ATTRIBUTE_PROTOCOL
        ):
            continue  # __getattr__ must raise AttributeError
        if name in _FORBIDDEN_RAISES:
            yield Finding(
                rule="E001",
                path=module.relpath,
                line=node.lineno,
                scope=scope,
                message=(
                    f"library code raises builtin '{name}' — invisible to "
                    "'except ReproError' callers"
                ),
                hint=(
                    "raise the matching repro.exceptions type "
                    "(ValidationError, SchemaError, SerializationError, ...)"
                ),
            )


def _check_module_decodes(module: ParsedModule) -> Iterator[Finding]:
    assert module.tree is not None
    for node, scope in iter_scoped(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_decode_function(node.name):
            continue
        params = _param_names(node)
        if not params:
            continue
        fn_scope = (
            node.name if scope == "<module>" else f"{scope}.{node.name}"
        )
        for subscript in _unguarded_subscripts(node, params, False):
            target = subscript.value
            assert isinstance(target, ast.Name)
            yield Finding(
                rule="E002",
                path=module.relpath,
                line=subscript.lineno,
                scope=fn_scope,
                message=(
                    f"decode function indexes parameter "
                    f"'{target.id}' outside a guarding try — malformed "
                    "input escapes as bare KeyError/TypeError"
                ),
                hint=(
                    "wrap the decode in try/except (KeyError, TypeError, "
                    "ValueError) and re-raise SerializationError"
                ),
            )


@checker(
    "raising",
    title="Exception discipline: failures derive from ReproError",
    rules=(
        RuleSpec(
            "E001",
            "builtin exception raised in library code",
            rationale=(
                "Callers catch library failures via 'except ReproError'; "
                "a raised builtin bypasses that contract and masquerades "
                "as an internal bug."
            ),
        ),
        RuleSpec(
            "E002",
            "decode-shaped function indexes its payload unguarded",
            rationale=(
                "Malformed snapshots/frames must surface as "
                "SerializationError naming the defect, not a bare "
                "KeyError('kind') from three stack frames down."
            ),
        ),
    ),
)
def check_raising(project: Project) -> Iterator[Finding]:
    """Run both exception-discipline rules over the library modules."""
    for module in project.iter_modules(("library",)):
        if module.tree is None:
            continue
        if module.relpath != _EXCEPTIONS_HOME:
            yield from _check_module_raises(module)
        yield from _check_module_decodes(module)
