"""End-to-end shape tests: the paper's qualitative claims at small scale.

Each test here asserts one of the conclusions the evaluation section rests
on, using seeds and sizes small enough for CI.  The full-size versions live
in benchmarks/.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import (
    BayesReconstructor,
    EMReconstructor,
    HistogramDistribution,
    UniformRandomizer,
    posterior_privacy,
)
from repro.datasets import quest, shapes
from repro.tree import PrivacyPreservingClassifier

warnings.filterwarnings("ignore", category=UserWarning, module="repro")


class TestReconstructionClaims:
    """Paper §3: the reconstructed distribution tracks the original."""

    @pytest.mark.parametrize("shape", ["plateau", "triangles"])
    @pytest.mark.parametrize("noise", ["uniform", "gaussian"])
    def test_reconstruction_recovers_shape(self, shape, noise):
        from repro.core.privacy import noise_for_privacy

        density = shapes.SHAPES[shape]()
        x = density.sample(8_000, seed=13)
        part = density.partition(20)
        randomizer = noise_for_privacy(noise, 0.5, 1.0)
        w = randomizer.randomize(x, seed=14)

        original = HistogramDistribution.from_values(x, part)
        randomized = HistogramDistribution.from_values(w, part)
        reconstructed = BayesReconstructor().reconstruct(w, part, randomizer)

        l1_rec = reconstructed.distribution.l1_distance(original)
        l1_rand = randomized.l1_distance(original)
        # the paper's figure: reconstruction roughly restores the shape
        assert l1_rec < 0.5 * l1_rand
        assert l1_rec < 0.25

    @pytest.mark.filterwarnings("ignore::UserWarning")
    def test_bayes_and_em_agree(self):
        density = shapes.plateau()
        x = density.sample(5_000, seed=15)
        part = density.partition(16)
        noise = UniformRandomizer.from_privacy(0.5, 1.0)
        w = noise.randomize(x, seed=16)
        bayes = BayesReconstructor(stopping="delta", tol=1e-8, max_iterations=1500)
        em = EMReconstructor(tol=1e-11)
        d_bayes = bayes.reconstruct(w, part, noise).distribution
        d_em = em.reconstruct(w, part, noise).distribution
        assert d_bayes.l1_distance(d_em) < 0.05


class TestClassificationClaims:
    """Paper §5: who wins, by roughly what factor."""

    @pytest.fixture(scope="class")
    def fn1(self):
        train = quest.generate(6_000, function=1, seed=31)
        test = quest.generate(1_500, function=1, seed=32)
        return train, test

    def test_byclass_tracks_original_on_fn1(self, fn1):
        train, test = fn1
        original = PrivacyPreservingClassifier("original").fit(train).score(test)
        byclass = (
            PrivacyPreservingClassifier("byclass", privacy=1.0, seed=33)
            .fit(train)
            .score(test)
        )
        assert original > 0.93
        assert byclass > original - 0.08

    def test_randomized_collapses_at_high_privacy(self, fn1):
        train, test = fn1
        randomized = (
            PrivacyPreservingClassifier("randomized", privacy=1.0, seed=34)
            .fit(train)
            .score(test)
        )
        byclass = (
            PrivacyPreservingClassifier("byclass", privacy=1.0, seed=34)
            .fit(train)
            .score(test)
        )
        # the paper's headline gap at 100% privacy
        assert byclass > randomized + 0.15

    def test_byclass_beats_randomized_on_fn4(self, quest_fn2_split):
        train = quest.generate(6_000, function=4, seed=35)
        test = quest.generate(2_000, function=4, seed=36)
        randomized, randomizers = quest.randomize(train, privacy=1.0, seed=37)
        accs = {}
        for strategy in ("randomized", "global", "byclass"):
            clf = PrivacyPreservingClassifier(strategy, privacy=1.0, seed=38)
            clf.fit(train, randomized_table=randomized, randomizers=randomizers)
            accs[strategy] = clf.score(test)
        assert accs["byclass"] > accs["randomized"]
        assert accs["global"] > accs["randomized"] - 0.02

    def test_accuracy_degrades_gracefully_with_privacy(self, quest_fn2_split):
        train, test = quest_fn2_split
        accuracies = []
        for privacy in (0.25, 1.0, 2.0):
            clf = PrivacyPreservingClassifier(
                "byclass", privacy=privacy, seed=39
            ).fit(train)
            accuracies.append(clf.score(test))
        # monotone-ish decay: low privacy much better than very high
        assert accuracies[0] > accuracies[2]
        assert accuracies[0] > 0.85
        assert accuracies[2] > 0.55  # still far better than coin flip


class TestPrivacyClaims:
    """Paper §2 + follow-on: the privacy metric behaves as advertised."""

    def test_posterior_privacy_decreases_with_information(self):
        part = shapes.plateau().partition(16)
        x = shapes.plateau().sample(5_000, seed=41)
        prior = HistogramDistribution.from_values(x, part)
        fractions = [
            posterior_privacy(
                prior, UniformRandomizer.from_privacy(p, 1.0)
            ).privacy_fraction
            for p in (0.25, 1.0, 2.0)
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_interval_privacy_matches_paper_convention(self):
        noise = UniformRandomizer.from_privacy(1.0, 130_000, 0.95)
        # "100% privacy": the 95% interval is as wide as the salary domain
        assert noise.privacy_interval_width(0.95) == pytest.approx(130_000)
