"""Naive-Bayes classification over reconstructed distributions.

The paper's §4 machinery (record correction + trees) exists because
decision trees need per-record values.  A naive-Bayes classifier needs
only per-class, per-attribute *marginals* — which is exactly what
distribution reconstruction estimates.  This subpackage makes that point
executable: :class:`~repro.bayes.naive.PrivacyPreservingNaiveBayes`
trains directly on the reconstructed distributions, with no correction
step at all, and converges to the no-privacy naive-Bayes model as data
grows.
"""

from repro.bayes.naive import NaiveBayesClassifier, PrivacyPreservingNaiveBayes

__all__ = ["NaiveBayesClassifier", "PrivacyPreservingNaiveBayes"]
