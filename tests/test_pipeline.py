"""Tests for the PrivacyPreservingClassifier training strategies."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.reconstruction import BayesReconstructor
from repro.datasets import quest
from repro.exceptions import NotFittedError, ValidationError
from repro.tree.pipeline import STRATEGIES, PrivacyPreservingClassifier

warnings.filterwarnings("ignore", category=UserWarning, module="repro")


@pytest.fixture(scope="module")
def fn1_data():
    train = quest.generate(3_000, function=1, seed=21)
    test = quest.generate(1_000, function=1, seed=22)
    return train, test


class TestConfiguration:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValidationError):
            PrivacyPreservingClassifier("quantum")

    def test_rejects_bad_privacy(self):
        with pytest.raises(ValidationError):
            PrivacyPreservingClassifier(privacy=0.0)

    def test_rejects_bad_intervals(self):
        with pytest.raises(ValidationError):
            PrivacyPreservingClassifier(n_intervals=1)

    def test_strategies_registry(self):
        assert set(STRATEGIES) == {
            "original",
            "randomized",
            "global",
            "byclass",
            "local",
            "valueclass",
        }

    def test_not_fitted(self, fn1_data):
        clf = PrivacyPreservingClassifier("original")
        with pytest.raises(NotFittedError):
            clf.predict(fn1_data[1])


class _LoopedReconstructor:
    """The pre-engine behaviour: one problem at a time, nothing shared.

    No ``reconstruct_batch`` attribute, and a fresh reconstructor per call
    so no kernel or chi-squared threshold survives between problems.
    """

    def reconstruct(self, values, partition, randomizer):
        return BayesReconstructor().reconstruct(values, partition, randomizer)


class TestBatchedEquivalence:
    """The engine-batched fits are bit-identical to the looped path."""

    @pytest.mark.parametrize("strategy", ["global", "byclass", "local"])
    @pytest.mark.parametrize("noise", ["uniform", "gaussian"])
    def test_fit_matches_looped_path(self, fn1_data, strategy, noise):
        train, test = fn1_data
        base = PrivacyPreservingClassifier(strategy, noise=noise, seed=5)
        base.fit(train)
        randomized, randomizers = base.randomized_table_, base.randomizers_

        looped = PrivacyPreservingClassifier(
            strategy, noise=noise, seed=5, reconstructor=_LoopedReconstructor()
        ).fit(train, randomized_table=randomized, randomizers=randomizers)
        batched = PrivacyPreservingClassifier(strategy, noise=noise, seed=5).fit(
            train, randomized_table=randomized, randomizers=randomizers
        )

        assert np.array_equal(looped.intervals_, batched.intervals_)
        assert looped.tree_.export_text() == batched.tree_.export_text()
        assert np.array_equal(looped.predict(test), batched.predict(test))
        for name, looped_result in looped.reconstructions_.items():
            batched_result = batched.reconstructions_[name]
            if isinstance(looped_result, dict):
                pairs = [
                    (looped_result[c], batched_result[c]) for c in looped_result
                ]
            else:
                pairs = [(looped_result, batched_result)]
            for a, b in pairs:
                assert np.array_equal(a.distribution.probs, b.distribution.probs)
                assert a.n_iterations == b.n_iterations
                assert a.converged == b.converged

    def test_byclass_kernels_cached_across_attributes(self, fn1_data):
        train, _ = fn1_data
        clf = PrivacyPreservingClassifier("byclass", seed=3).fit(train)
        cache = clf.reconstructor.engine.kernel_cache
        # One lookup per attribute × class; only distinct
        # (partition, randomizer) pairs are built, the rest are hits.
        n_problems = len(clf.randomizers_) * train.n_classes
        assert cache.misses + cache.hits == n_problems
        assert cache.misses <= len(clf.randomizers_)
        assert cache.hits >= n_problems - len(clf.randomizers_)

    def test_intervals_attribute_exposed(self, fn1_data):
        train, _ = fn1_data
        clf = PrivacyPreservingClassifier("byclass", seed=3).fit(train)
        assert clf.intervals_ is not None
        assert clf.intervals_.shape == (train.n_records, len(train.attribute_names))
        assert clf.intervals_.dtype == np.int64


class TestStrategies:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_each_strategy_fits_and_predicts(self, fn1_data, strategy):
        train, test = fn1_data
        clf = PrivacyPreservingClassifier(strategy, privacy=0.5, seed=1)
        clf.fit(train)
        preds = clf.predict(test)
        assert preds.shape == (test.n_records,)
        assert set(np.unique(preds)) <= {0, 1}
        assert clf.score(test) > 0.5  # all strategies beat coin flips on Fn1

    def test_original_beats_randomized_at_high_privacy(self, fn1_data):
        train, test = fn1_data
        original = PrivacyPreservingClassifier("original").fit(train).score(test)
        randomized = (
            PrivacyPreservingClassifier("randomized", privacy=2.0, seed=2)
            .fit(train)
            .score(test)
        )
        assert original > randomized + 0.1

    def test_byclass_close_to_original_on_fn1(self, fn1_data):
        """Single-attribute concepts survive ByClass almost unchanged.

        At this deliberately small size (3 000 records) per-class
        reconstruction carries visible sampling noise, so the tolerance is
        loose; the integration test covers the tighter claim at 6 000 and
        the benchmark at paper scale.
        """
        train, test = fn1_data
        original = PrivacyPreservingClassifier("original").fit(train).score(test)
        byclass = (
            PrivacyPreservingClassifier("byclass", privacy=1.0, seed=4)
            .fit(train)
            .score(test)
        )
        assert byclass > original - 0.12

    def test_original_has_no_randomized_state(self, fn1_data):
        train, _ = fn1_data
        clf = PrivacyPreservingClassifier("original").fit(train)
        assert clf.randomized_table_ is None
        assert clf.randomizers_ == {}

    def test_randomizers_created_per_attribute(self, fn1_data):
        train, _ = fn1_data
        clf = PrivacyPreservingClassifier("byclass", privacy=0.5, seed=4).fit(train)
        assert set(clf.randomizers_) == set(train.attribute_names)

    def test_reconstructions_recorded_byclass(self, fn1_data):
        train, _ = fn1_data
        clf = PrivacyPreservingClassifier("byclass", privacy=0.5, seed=5).fit(train)
        assert set(clf.reconstructions_) == set(train.attribute_names)
        age_recs = clf.reconstructions_["age"]
        assert set(age_recs) == {0, 1}

    def test_reconstructions_recorded_global(self, fn1_data):
        train, _ = fn1_data
        clf = PrivacyPreservingClassifier("global", privacy=0.5, seed=6).fit(train)
        # global: one reconstruction per attribute (no per-class dict)
        assert hasattr(clf.reconstructions_["age"], "distribution")

    def test_attribute_subset_perturbation(self, fn1_data):
        train, test = fn1_data
        clf = PrivacyPreservingClassifier(
            "byclass", privacy=1.0, seed=7, attributes=("age",)
        ).fit(train)
        assert set(clf.randomizers_) == {"age"}
        assert clf.score(test) > 0.8

    def test_prerandomized_input(self, fn1_data):
        train, test = fn1_data
        randomized, randomizers = quest.randomize(train, privacy=0.5, seed=8)
        clf = PrivacyPreservingClassifier("byclass", privacy=0.5)
        clf.fit(train, randomized_table=randomized, randomizers=randomizers)
        assert clf.randomized_table_ is randomized
        assert clf.score(test) > 0.8

    def test_prerandomized_requires_both(self, fn1_data):
        train, _ = fn1_data
        randomized, _ = quest.randomize(train, privacy=0.5, seed=9)
        clf = PrivacyPreservingClassifier("byclass")
        with pytest.raises(ValidationError):
            clf.fit(train, randomized_table=randomized)

    def test_seeded_fit_reproducible(self, fn1_data):
        train, test = fn1_data
        a = PrivacyPreservingClassifier("byclass", privacy=0.5, seed=11).fit(train)
        b = PrivacyPreservingClassifier("byclass", privacy=0.5, seed=11).fit(train)
        np.testing.assert_array_equal(a.predict(test), b.predict(test))

    def test_gaussian_noise_supported(self, fn1_data):
        train, test = fn1_data
        clf = PrivacyPreservingClassifier(
            "byclass", noise="gaussian", privacy=0.5, seed=12
        ).fit(train)
        assert clf.score(test) > 0.8

    def test_local_close_to_byclass(self, fn1_data):
        train, test = fn1_data
        byclass = (
            PrivacyPreservingClassifier("byclass", privacy=1.0, seed=13)
            .fit(train)
            .score(test)
        )
        local = (
            PrivacyPreservingClassifier("local", privacy=1.0, seed=13)
            .fit(train)
            .score(test)
        )
        assert abs(local - byclass) < 0.12

    def test_valueclass_discloses_midpoints_only(self, fn1_data):
        train, test = fn1_data
        clf = PrivacyPreservingClassifier(
            "valueclass", privacy=0.25, seed=14
        ).fit(train)
        disclosed_ages = np.unique(clf.randomized_table_.column("age"))
        # privacy 0.25 => 4 coarse intervals => at most 4 disclosed values
        assert disclosed_ages.size <= 4
        assert clf.score(test) > 0.7

    def test_valueclass_worse_than_byclass_at_matched_privacy(self, fn1_data):
        """The paper's §2 argument for preferring value distortion."""
        train, test = fn1_data
        vc = (
            PrivacyPreservingClassifier("valueclass", privacy=0.5, seed=15)
            .fit(train)
            .score(test)
        )
        bc = (
            PrivacyPreservingClassifier("byclass", privacy=0.5, seed=15)
            .fit(train)
            .score(test)
        )
        assert bc > vc - 0.03

    def test_prune_fraction_shrinks_tree(self, fn1_data):
        train, test = fn1_data
        grown = PrivacyPreservingClassifier(
            "randomized", privacy=1.0, seed=16
        ).fit(train)
        pruned = PrivacyPreservingClassifier(
            "randomized", privacy=1.0, seed=16, prune_fraction=0.2
        ).fit(train)
        assert pruned.tree_.n_nodes < grown.tree_.n_nodes
        assert pruned.score(test) > grown.score(test) - 0.05

    def test_prune_fraction_validated(self):
        with pytest.raises(ValidationError):
            PrivacyPreservingClassifier(prune_fraction=0.5)
        with pytest.raises(ValidationError):
            PrivacyPreservingClassifier(prune_fraction=-0.1)

    def test_prune_fraction_works_for_corrected_strategies(self, fn1_data):
        train, test = fn1_data
        clf = PrivacyPreservingClassifier(
            "byclass", privacy=1.0, seed=17, prune_fraction=0.2
        ).fit(train)
        assert clf.score(test) > 0.8

    def test_auto_stopping_resolution(self, fn1_data):
        train, _ = fn1_data
        clf = PrivacyPreservingClassifier("original").fit(train)
        assert clf.tree_.max_depth == 8
        assert clf.tree_.min_records_split == max(10, round(0.01 * train.n_records))

    def test_explicit_stopping_overrides(self, fn1_data):
        train, _ = fn1_data
        clf = PrivacyPreservingClassifier(
            "original", max_depth=2, min_records_split=50
        ).fit(train)
        assert clf.tree_.depth <= 2
