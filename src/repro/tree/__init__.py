"""Decision-tree classification over randomized data (paper §4).

* :mod:`repro.tree.criteria` — impurity functions on class-count arrays,
* :mod:`repro.tree.tree` — the interval-based tree structure and builder,
* :mod:`repro.tree.pipeline` — the paper's training algorithms
  (Original / Randomized / Global / ByClass / Local) behind one estimator,
  :class:`~repro.tree.pipeline.PrivacyPreservingClassifier`.
"""

from repro.tree.criteria import entropy, gini, split_impurities
from repro.tree.pipeline import STRATEGIES, PrivacyPreservingClassifier
from repro.tree.tree import DecisionTreeClassifier, TreeNode

__all__ = [
    "gini",
    "entropy",
    "split_impurities",
    "DecisionTreeClassifier",
    "TreeNode",
    "PrivacyPreservingClassifier",
    "STRATEGIES",
]
