"""The columnar binary wire format for bulk disclosure ingestion.

JSON is the service's lingua franca, but parsing a float list builds one
Python object per disclosed value — the ingest hot path of a server
absorbing millions of randomized reports should never do that.  This
module defines ``application/x-ppdm-columns``: a versioned, columnar
frame whose float columns are raw little-endian ``float64`` bytes, so
the decoder is ``np.frombuffer`` over the request body (zero copies, no
per-value objects) and the encoder is one ``tobytes()`` per column.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"PPDM"
    4       2     u16    wire version (1 = unlabeled, 2 = class-aware,
                         3 = partial — see below)
    6       2     u16    n_attributes
    8       4     i32    shard pin (-1 = unpinned, round-robin)
    [v2]    8     u64    class row count (0 = no class column)
    ...     ...   attribute table, n_attributes entries:
                    u16    name length L (UTF-8 bytes)
                    L      attribute name
                    u64    row count
    [v2]    ...   class column: class_row_count x 4 bytes of raw
                  little-endian int32 class labels
    ...     ...   columns: row_count x 8 bytes of raw little-endian
                  float64 per attribute, in table order

Version 2 frames carry an optional *class column* — one int32 label per
record, shared by every attribute column (whose row counts must then
all equal the class row count) — so classification training data
(class, attribute values) streams over the same zero-copy path.
Version 1 frames remain fully supported; their records land in the
server's unlabeled partition.

Version 3 is the *partial* frame (``application/x-ppdm-partial``): the
cluster tier's unit of exchange.  Instead of records it carries one
worker's **merged class-conditional histogram partials** — for each
attribute, ``n_blocks`` rows (unlabeled + one per class) of
noise-expanded bin counts — so a coordinator absorbs a whole worker's
state in O(bins), however many records the worker has seen.  The header
struct is shared with v1/v2; the i32 slot that pins a shard in record
frames carries ``n_blocks`` here::

    offset  size  field
    0       4     magic  b"PPDM"
    4       2     u16    wire version (3 = partial)
    6       2     u16    n_attributes
    8       4     i32    n_blocks (= classes + 1; >= 1)
    ...     ...   attribute table, n_attributes entries:
                    u16    name length L (UTF-8 bytes)
                    L      attribute name
                    u64    bin count
    ...     ...   counts: n_blocks x bin_count x 8 bytes of raw
                  little-endian float64 per attribute, in table order
                  (block 0 = unlabeled, block c + 1 = class c)

Partial counts must be finite, non-negative, and integer-valued —
anything else is a malformed frame, not data.  Partial frames are
self-delimiting like record frames, so a sync body may append labeled
v2 record frames after the partial (:func:`split_partial`) — that is
how a training worker ships its row buffer alongside its aggregates in
one atomic push.

Version 4 is the *basket* frame (``application/x-ppdm-baskets``): the
association-mining workload's unit of ingest.  Market-basket data is
sparse boolean, so columns of float64 would waste ~64x the bytes; a
basket frame instead ships each transaction as a varint list of the
item ids it contains, with a varint offset index up front so the frame
is self-delimiting and any transaction is addressable without decoding
its predecessors.  The header struct is shared with v1-v3; the u16
slot that counts attributes in record frames carries ``n_items`` here,
and the i32 slot is the usual shard pin::

    offset  size  field
    0       4     magic  b"PPDM"
    4       2     u16    wire version (4 = baskets)
    6       2     u16    n_items (item ids live in [0, n_items))
    8       4     i32    shard pin (-1 = unpinned, round-robin)
    ...     var   varint n_transactions (>= 1)
    ...     var   offset index: n_transactions varints, the byte
                  length of each transaction's item-id payload
                  (prefix sums give the offsets)
    ...     var   payload: per transaction, its item ids as varints,
                  strictly increasing (sorted, no duplicates; a zero
                  length encodes the empty transaction)

Varints are LEB128: 7 value bits per byte, high bit set on every byte
but the last.  Decoders reject item ids at or above ``n_items``,
non-increasing id sequences, transactions that over- or under-run
their declared byte length, and frames whose decoded matrix would be
absurdly large — malformed bytes are a 400, never a partial absorb.
v1-v3 byte-compatibility is untouched: record/partial decoders reject
version 4 frames loudly, and vice versa.

Version 5 is the *quantized* record frame: the v2 layout plus one
dtype-code byte per attribute-table entry, so already-discretized
columns ship at their natural width instead of float64.  Randomized
categorical and binned numeric disclosures are bin indices the moment
the client locates them on the attribute's noise-expanded grid —
shipping them as ``float64`` spends 8 bytes on a value that fits in
one.  A v5 column is either raw values (code 0, float64 — exactly the
v1/v2 payload) or *pre-located bin indices* (code 1 = int8, code 2 =
int16), decoded zero-copy via ``np.frombuffer`` and widened only when
the fused bincount needs platform integers::

    offset  size  field
    0       4     magic  b"PPDM"
    4       2     u16    wire version (5 = quantized)
    6       2     u16    n_attributes
    8       4     i32    shard pin (-1 = unpinned, round-robin)
    12      8     u64    class row count (0 = no class column)
    ...     ...   attribute table, n_attributes entries:
                    u16    name length L (UTF-8 bytes)
                    L      attribute name
                    u64    row count
                    u8     dtype code (0 = float64 raw values,
                           1 = int8 bin indices, 2 = int16 bin indices)
    ...     ...   class column: class_row_count x 4 bytes of raw
                  little-endian int32 class labels (when count > 0)
    ...     ...   columns: row_count x itemsize bytes of raw
                  little-endian values per attribute, in table order

Quantized columns carry *decisions*, not measurements: each index must
lie in ``[0, n_intervals)`` of its attribute's noise-expanded grid, and
the server adds shard offsets directly — no ``searchsorted`` on the hot
path.  Because the client and server locate on the same grid, estimates
from a quantized stream are bit-identical to the float64 stream of the
same disclosures.  v1-v4 frames are byte-identical to previous
releases and still accepted unchanged.

Per-frame *codecs* ride HTTP ``Content-Encoding``, orthogonal to the
frame version: a whole request body (any number of frames, any
version) may be compressed with zlib (always available) or zstd (when
the ``zstandard`` package is importable).  :func:`compress_payload` /
:func:`decompress_payload` are the single codec implementation; the
decode side is *bounded* — a streamed ``zlib.decompressobj`` with
``max_length`` (or zstd's ``max_output_size``) enforces an explicit
decompressed-size cap, so a decompression bomb (tiny wire body, huge
decoded size) raises :class:`~repro.exceptions.DecodedSizeError`
instead of exhausting memory.

Frames are self-delimiting, so a request body may concatenate any
number of them (:func:`iter_frames` / :func:`iter_labeled_frames` /
:func:`iter_basket_frames`) and a persistent connection can stream
batch after batch.  The NDJSON fallback (``application/x-ndjson``)
keeps the same many-batches-per-body shape curl-able: one
``{"batch": ..., "shard": ..., "classes": ...}`` JSON object per line
(``classes`` optional).

Malformed frames raise :class:`~repro.exceptions.ValidationError`
(decode bombs and codec corruption the sharper
:class:`~repro.exceptions.WireFormatError` subclass), which the HTTP
front end maps to status 400 (413 for decoded-size-cap hits).
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np

from repro.exceptions import DecodedSizeError, ValidationError, WireFormatError
from repro.utils.validation import check_label_column

try:  # optional codec: present when the zstandard package is installed
    import zstandard as _zstandard
except ImportError:  # pragma: no cover - environment-dependent
    _zstandard = None  # type: ignore[assignment]

__all__ = [
    "CONTENT_TYPE_BASKETS",
    "CONTENT_TYPE_COLUMNS",
    "CONTENT_TYPE_NDJSON",
    "CONTENT_TYPE_PARTIAL",
    "MAGIC",
    "WIRE_CODEC_IDENTITY",
    "WIRE_CODEC_ZLIB",
    "WIRE_CODEC_ZSTD",
    "WIRE_VERSION",
    "WIRE_VERSION_BASKETS",
    "WIRE_VERSION_CLASSES",
    "WIRE_VERSION_PARTIAL",
    "WIRE_VERSION_QUANTIZED",
    "compress_payload",
    "decode_baskets",
    "decode_columns",
    "decode_labeled",
    "decode_partial",
    "decompress_payload",
    "encode_baskets",
    "encode_columns",
    "encode_ndjson",
    "encode_partial",
    "encode_quantized",
    "iter_basket_frames",
    "iter_frames",
    "iter_labeled_frames",
    "iter_labeled_ndjson",
    "iter_ndjson",
    "resolve_codec",
    "split_partial",
    "supported_codecs",
]

#: content type negotiating the binary columnar frames
CONTENT_TYPE_COLUMNS = "application/x-ppdm-columns"
#: content type for the newline-delimited JSON fallback
CONTENT_TYPE_NDJSON = "application/x-ndjson"
#: content type for cluster partial-sync bodies (version 3 frames)
CONTENT_TYPE_PARTIAL = "application/x-ppdm-partial"
#: content type for market-basket transaction bodies (version 4 frames)
CONTENT_TYPE_BASKETS = "application/x-ppdm-baskets"
#: the four magic bytes every columnar frame starts with
MAGIC = b"PPDM"
#: unlabeled frame version (the PR 4 layout, still fully supported)
WIRE_VERSION = 1
#: class-aware frame version: adds an optional int32 class column
WIRE_VERSION_CLASSES = 2
#: partial frame version: merged per-class histogram counts (cluster sync)
WIRE_VERSION_PARTIAL = 3
#: basket frame version: varint transaction lists of item ids (mining)
WIRE_VERSION_BASKETS = 4
#: quantized frame version: per-column dtype codes (int8/int16 bin indices)
WIRE_VERSION_QUANTIZED = 5
#: codec token for uncompressed request bodies (the HTTP default)
WIRE_CODEC_IDENTITY = "identity"
#: codec token for zlib-compressed bodies (stdlib, always available)
WIRE_CODEC_ZLIB = "zlib"
#: codec token for zstd-compressed bodies (needs the zstandard package)
WIRE_CODEC_ZSTD = "zstd"

_HEADER = struct.Struct("<4sHHi")
_NAME_LEN = struct.Struct("<H")
_ROW_COUNT = struct.Struct("<Q")
_CLASS_COUNT = struct.Struct("<Q")
_DTYPE_CODE = struct.Struct("<B")
_F8 = np.dtype("<f8")
_I4 = np.dtype("<i4")
_I1 = np.dtype("<i1")
_I2 = np.dtype("<i2")
#: v5 dtype codes -> column dtypes (0 = raw float64 values, 1/2 = bin indices)
_DTYPE_BY_CODE = {0: _F8, 1: _I1, 2: _I2}
_CODE_BY_DTYPE = {_F8: 0, _I1: 1, _I2: 2}
#: decode-bomb guard shared by every frame decoder: a single frame may not
#: expand past this many cells, however plausible its byte length looks
_MAX_FRAME_CELLS = 1 << 28


def _encode_class_column(classes) -> np.ndarray:
    """Validate and convert a class column to little-endian int32."""
    arr = check_label_column(classes)
    if arr.size and (arr.min() < -(2**31) or arr.max() >= 2**31):
        raise ValidationError("class labels must fit in a signed 32-bit int")
    return np.ascontiguousarray(arr, dtype=_I4)


def encode_columns(batch, *, shard: int | None = None, classes=None) -> bytes:
    """Encode one ``{attribute: values}`` batch as a columnar frame.

    Parameters
    ----------
    batch:
        Mapping of attribute name to a 1-D sequence of float values.
    shard:
        Optional shard pin carried in the frame header (``None`` routes
        round-robin on the server).
    classes:
        Optional class column: one integer label per record.  Every
        attribute column must then have exactly that many rows, and the
        frame is emitted as wire version 2 (without ``classes`` — or
        with an empty column, which carries no labels — the
        byte-for-byte version 1 layout is produced, so old servers keep
        decoding unlabeled frames).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.wire import decode_columns, decode_labeled, encode_columns
    >>> frame = encode_columns({"age": [31.5, 47.0]}, shard=2)
    >>> frame[:4]
    b'PPDM'
    >>> batch, shard = decode_columns(frame)
    >>> batch["age"].tolist(), shard
    ([31.5, 47.0], 2)
    >>> labeled = encode_columns({"age": [31.5, 47.0]}, classes=[0, 1])
    >>> batch, classes, shard = decode_labeled(labeled)
    >>> classes.tolist(), shard
    ([0, 1], None)
    """
    if not isinstance(batch, dict):
        raise ValidationError("batch must map attribute -> values")
    class_column = None
    if classes is not None:
        class_column = _encode_class_column(classes)
        if class_column.size == 0:
            # an empty class column carries no labels: emit the plain
            # unlabeled v1 frame (empty != mismatched)
            class_column = None
    columns = []
    table = []
    for name, values in batch.items():
        if not isinstance(name, str) or not name:
            raise ValidationError("attribute names must be non-empty strings")
        encoded_name = name.encode("utf-8")
        if len(encoded_name) > 0xFFFF:
            raise ValidationError(f"attribute name {name!r} is too long")
        arr = np.ascontiguousarray(values, dtype=_F8)
        if arr.ndim != 1:
            raise ValidationError(
                f"batch[{name!r}] must be 1-dimensional, got shape {arr.shape}"
            )
        if class_column is not None and arr.size != class_column.size:
            raise ValidationError(
                f"batch[{name!r}] has {arr.size} row(s) but the class "
                f"column has {class_column.size}; labeled frames need one "
                "class label per record"
            )
        table.append(
            _NAME_LEN.pack(len(encoded_name))
            + encoded_name
            + _ROW_COUNT.pack(arr.size)
        )
        columns.append(arr.tobytes())
    if len(batch) > 0xFFFF:
        raise ValidationError("a frame holds at most 65535 attributes")
    if class_column is None:
        header = _HEADER.pack(
            MAGIC, WIRE_VERSION, len(batch), -1 if shard is None else int(shard)
        )
        return header + b"".join(table) + b"".join(columns)
    header = _HEADER.pack(
        MAGIC,
        WIRE_VERSION_CLASSES,
        len(batch),
        -1 if shard is None else int(shard),
    )
    return (
        header
        + _CLASS_COUNT.pack(class_column.size)
        + b"".join(table)
        + class_column.tobytes()
        + b"".join(columns)
    )


def encode_quantized(batch, *, shard: int | None = None, classes=None) -> bytes:
    """Encode a batch as a version 5 frame with per-column dtype codes.

    Integer columns are treated as *pre-located bin indices* — the
    values :meth:`repro.core.Partition.locate` (or
    :meth:`~repro.service.AggregationService.quantize`) produces — and
    ship at their natural width: int8 when every index fits in a signed
    byte, int16 otherwise (indices above 32767 are rejected; no
    attribute grid is that fine).  Float columns ship as raw float64,
    byte-for-byte the v1/v2 column payload, so mixed batches work.

    Parameters
    ----------
    batch:
        Mapping of attribute name to a 1-D sequence.  Integer dtypes
        (including int8/int16 arrays, passed through unwidened) become
        quantized columns; everything else is encoded as float64 values.
    shard:
        Optional shard pin carried in the frame header.
    classes:
        Optional class column, one integer label per record — exactly
        the :func:`encode_columns` contract.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.wire import decode_labeled, encode_quantized
    >>> frame = encode_quantized({"age": np.array([0, 3, 1], dtype=np.int8)})
    >>> frame[:4], frame[4]
    (b'PPDM', 5)
    >>> batch, classes, shard = decode_labeled(frame)
    >>> batch["age"].tolist(), batch["age"].dtype.name
    ([0, 3, 1], 'int8')
    """
    if not isinstance(batch, dict):
        raise ValidationError("batch must map attribute -> values")
    if len(batch) > 0xFFFF:
        raise ValidationError("a frame holds at most 65535 attributes")
    class_column = None
    if classes is not None:
        class_column = _encode_class_column(classes)
        if class_column.size == 0:
            class_column = None
    columns = []
    table = []
    for name, values in batch.items():
        if not isinstance(name, str) or not name:
            raise ValidationError("attribute names must be non-empty strings")
        encoded_name = name.encode("utf-8")
        if len(encoded_name) > 0xFFFF:
            raise ValidationError(f"attribute name {name!r} is too long")
        arr = np.asarray(values)
        if arr.dtype.kind in "iu":
            if arr.ndim != 1:
                raise ValidationError(
                    f"batch[{name!r}] must be 1-dimensional, got shape "
                    f"{arr.shape}"
                )
            if arr.size and int(arr.min()) < 0:
                raise ValidationError(
                    f"batch[{name!r}] holds negative bin indices; quantized "
                    "columns carry locations on the attribute grid"
                )
            if arr.size and int(arr.max()) > 0x7FFF:
                raise ValidationError(
                    f"batch[{name!r}] holds bin index {int(arr.max())}; "
                    "quantized columns cap indices at 32767 (int16)"
                )
            if arr.dtype not in (_I1, _I2):
                narrow = _I1 if (not arr.size or int(arr.max()) <= 0x7F) else _I2
                arr = arr.astype(narrow)
        else:
            arr = np.ascontiguousarray(values, dtype=_F8)
            if arr.ndim != 1:
                raise ValidationError(
                    f"batch[{name!r}] must be 1-dimensional, got shape "
                    f"{arr.shape}"
                )
        if class_column is not None and arr.size != class_column.size:
            raise ValidationError(
                f"batch[{name!r}] has {arr.size} row(s) but the class "
                f"column has {class_column.size}; labeled frames need one "
                "class label per record"
            )
        code = _CODE_BY_DTYPE[arr.dtype]
        table.append(
            _NAME_LEN.pack(len(encoded_name))
            + encoded_name
            + _ROW_COUNT.pack(arr.size)
            + _DTYPE_CODE.pack(code)
        )
        columns.append(np.ascontiguousarray(arr, dtype=_DTYPE_BY_CODE[code]).tobytes())
    header = _HEADER.pack(
        MAGIC,
        WIRE_VERSION_QUANTIZED,
        len(batch),
        -1 if shard is None else int(shard),
    )
    return (
        header
        + _CLASS_COUNT.pack(0 if class_column is None else class_column.size)
        + b"".join(table)
        + (b"" if class_column is None else class_column.tobytes())
        + b"".join(columns)
    )


def _decode_frame(view: memoryview, offset: int) -> tuple:
    """Decode one frame at ``offset``.

    Returns ``(batch, shard, classes, next_offset)`` — ``classes`` is
    ``None`` for frames without a class column.
    """
    end = len(view)
    if end - offset < _HEADER.size:
        raise ValidationError(
            f"truncated columnar frame: {end - offset} byte(s) left, "
            f"header needs {_HEADER.size}"
        )
    magic, version, n_attributes, shard = _HEADER.unpack_from(view, offset)
    if magic != MAGIC:
        raise ValidationError(
            f"bad frame magic {bytes(magic)!r}; expected {MAGIC!r} "
            f"(is the body really {CONTENT_TYPE_COLUMNS}?)"
        )
    if version not in (WIRE_VERSION, WIRE_VERSION_CLASSES, WIRE_VERSION_QUANTIZED):
        raise ValidationError(
            f"unsupported wire version {version}; this server speaks "
            f"versions {WIRE_VERSION}, {WIRE_VERSION_CLASSES}, and "
            f"{WIRE_VERSION_QUANTIZED}"
        )
    offset += _HEADER.size
    class_rows = 0
    if version in (WIRE_VERSION_CLASSES, WIRE_VERSION_QUANTIZED):
        if end - offset < _CLASS_COUNT.size:
            raise ValidationError(
                f"truncated columnar frame: version {version} header needs "
                "a class row count"
            )
        (class_rows,) = _CLASS_COUNT.unpack_from(view, offset)
        offset += _CLASS_COUNT.size
    names = []
    rows = []
    dtypes = []
    for _ in range(n_attributes):
        if end - offset < _NAME_LEN.size:
            raise ValidationError("truncated columnar frame attribute table")
        (name_len,) = _NAME_LEN.unpack_from(view, offset)
        offset += _NAME_LEN.size
        entry_tail = _ROW_COUNT.size
        if version == WIRE_VERSION_QUANTIZED:
            entry_tail += _DTYPE_CODE.size
        if end - offset < name_len + entry_tail:
            raise ValidationError("truncated columnar frame attribute table")
        try:
            name = str(view[offset : offset + name_len], "utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(f"attribute name is not UTF-8: {exc}") from exc
        offset += name_len
        (row_count,) = _ROW_COUNT.unpack_from(view, offset)
        offset += _ROW_COUNT.size
        dtype = _F8
        if version == WIRE_VERSION_QUANTIZED:
            (code,) = _DTYPE_CODE.unpack_from(view, offset)
            offset += _DTYPE_CODE.size
            dtype = _DTYPE_BY_CODE.get(code)
            if dtype is None:
                raise WireFormatError(
                    f"quantized frame: column {name!r} declares unknown "
                    f"dtype code {code}; this server speaks codes "
                    f"{sorted(_DTYPE_BY_CODE)}"
                )
        if name in names:
            raise ValidationError(f"duplicate attribute {name!r} in frame")
        if class_rows and row_count != class_rows:
            raise ValidationError(
                f"labeled frame: column {name!r} declares {row_count} "
                f"row(s) but the class column has {class_rows}"
            )
        names.append(name)
        rows.append(row_count)
        dtypes.append(dtype)
    total_cells = class_rows + sum(rows)
    if total_cells > _MAX_FRAME_CELLS:
        raise WireFormatError(
            f"columnar frame declares {total_cells} cells across "
            f"{n_attributes} column(s); the decoder caps frames at "
            f"{_MAX_FRAME_CELLS}"
        )
    classes = None
    if class_rows:
        nbytes = class_rows * _I4.itemsize
        if end - offset < nbytes:
            raise ValidationError(
                f"truncated columnar frame: the class column declares "
                f"{class_rows} rows but only {end - offset} byte(s) remain"
            )
        classes = np.frombuffer(view, dtype=_I4, count=class_rows, offset=offset)
        offset += nbytes
    batch = {}
    for name, row_count, dtype in zip(names, rows, dtypes):
        nbytes = row_count * dtype.itemsize
        if end - offset < nbytes:
            raise ValidationError(
                f"truncated columnar frame: column {name!r} declares "
                f"{row_count} rows but only {end - offset} byte(s) remain"
            )
        batch[name] = np.frombuffer(view, dtype=dtype, count=row_count, offset=offset)
        offset += nbytes
    return batch, (None if shard < 0 else shard), classes, offset


def decode_columns(payload) -> tuple:
    """Decode a single unlabeled columnar frame; return ``(batch, shard)``.

    The inverse of :func:`encode_columns`.  Columns come back as
    read-only ``float64`` views into ``payload`` — no bytes are copied.
    Trailing bytes after the frame are an error; bodies carrying several
    concatenated frames go through :func:`iter_frames`.  Frames carrying
    a class column are rejected (decode those with
    :func:`decode_labeled`, which returns the classes too).

    Examples
    --------
    >>> from repro.service.wire import decode_columns, encode_columns
    >>> batch, shard = decode_columns(encode_columns({"x": [0.5]}))
    >>> batch["x"].tolist(), shard
    ([0.5], None)
    """
    batch, classes, shard = decode_labeled(payload)
    if classes is not None:
        raise ValidationError(
            "frame carries a class column; decode it with decode_labeled()"
        )
    return batch, shard


def decode_labeled(payload) -> tuple:
    """Decode a single columnar frame; return ``(batch, classes, shard)``.

    Accepts record wire versions 1, 2, and 5: ``classes`` is a
    read-only int32 view for frames carrying a class column and
    ``None`` otherwise.  Version 5 (quantized) columns come back at
    their declared width — int8/int16 bin indices stay narrow.

    Examples
    --------
    >>> from repro.service.wire import decode_labeled, encode_columns
    >>> frame = encode_columns({"x": [0.5, 0.9]}, classes=[1, 0], shard=2)
    >>> batch, classes, shard = decode_labeled(frame)
    >>> batch["x"].tolist(), classes.tolist(), shard
    ([0.5, 0.9], [1, 0], 2)
    """
    view = memoryview(payload)
    batch, shard, classes, offset = _decode_frame(view, 0)
    if offset != len(view):
        raise ValidationError(
            f"{len(view) - offset} trailing byte(s) after the frame; "
            "multi-frame bodies decode with iter_frames()"
        )
    return batch, classes, shard


def iter_frames(payload):
    """Yield ``(batch, shard)`` for every concatenated frame in ``payload``.

    The unlabeled decode loop: each column is a zero-copy
    ``np.frombuffer`` view.  Labeled frames (version 2 with a class
    column) are rejected so their classes can never be silently dropped
    — iterate those with :func:`iter_labeled_frames`.

    Examples
    --------
    >>> from repro.service.wire import encode_columns, iter_frames
    >>> body = encode_columns({"x": [0.1]}) + encode_columns({"x": [0.9]}, shard=1)
    >>> [(b["x"].tolist(), s) for b, s in iter_frames(body)]
    [([0.1], None), ([0.9], 1)]
    """
    for batch, classes, shard in iter_labeled_frames(payload):
        if classes is not None:
            raise ValidationError(
                "frame carries a class column; iterate with "
                "iter_labeled_frames()"
            )
        yield batch, shard


def iter_labeled_frames(payload):
    """Yield ``(batch, classes, shard)`` for every frame in ``payload``.

    The decoder behind ``POST /ingest`` with
    ``Content-Type: application/x-ppdm-columns``: version 1, 2, and 5
    frames may be freely mixed in one body, and each column — including
    the class column — is decoded as a zero-copy ``np.frombuffer`` view
    (quantized version 5 columns at their declared int8/int16 width).

    Examples
    --------
    >>> from repro.service.wire import encode_columns, iter_labeled_frames
    >>> body = encode_columns({"x": [0.1]}) + encode_columns(
    ...     {"x": [0.9]}, classes=[1]
    ... )
    >>> [(b["x"].tolist(), None if c is None else c.tolist(), s)
    ...  for b, c, s in iter_labeled_frames(body)]
    [([0.1], None, None), ([0.9], [1], None)]
    """
    view = memoryview(payload)
    offset = 0
    while offset < len(view):
        batch, shard, classes, offset = _decode_frame(view, offset)
        yield batch, classes, shard


def encode_partial(partials) -> bytes:
    """Encode merged per-class histogram partials as one version 3 frame.

    ``partials`` maps attribute name to a 2-D ``(n_blocks, bins)`` count
    matrix — exactly the shape
    :meth:`~repro.service.AggregationService.export_partial` produces
    (row 0 unlabeled, row ``c + 1`` class ``c``).  Every attribute must
    share one block count; counts must be finite, non-negative, and
    integer-valued (histogram counts, not arbitrary floats).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.wire import decode_partial, encode_partial
    >>> frame = encode_partial({"age": np.array([[2.0, 1.0], [0.0, 3.0]])})
    >>> frame[:4]
    b'PPDM'
    >>> decode_partial(frame)["age"].tolist()
    [[2.0, 1.0], [0.0, 3.0]]
    """
    if not isinstance(partials, dict) or not partials:
        raise ValidationError(
            "partials must be a non-empty mapping of attribute -> "
            "(n_blocks, bins) counts"
        )
    if len(partials) > 0xFFFF:
        raise ValidationError("a partial frame holds at most 65535 attributes")
    n_blocks = None
    table = []
    blocks = []
    for name, counts in partials.items():
        if not isinstance(name, str) or not name:
            raise ValidationError("attribute names must be non-empty strings")
        encoded_name = name.encode("utf-8")
        if len(encoded_name) > 0xFFFF:
            raise ValidationError(f"attribute name {name!r} is too long")
        matrix = np.ascontiguousarray(counts, dtype=_F8)
        if matrix.ndim != 2 or matrix.shape[0] < 1:
            raise ValidationError(
                f"partials[{name!r}] must be a (n_blocks, bins) matrix, "
                f"got shape {matrix.shape}"
            )
        if n_blocks is None:
            n_blocks = matrix.shape[0]
        elif matrix.shape[0] != n_blocks:
            raise ValidationError(
                f"partials[{name!r}] has {matrix.shape[0]} class block(s); "
                f"other attributes have {n_blocks} — one schema per frame"
            )
        _check_partial_counts(name, matrix)
        table.append(
            _NAME_LEN.pack(len(encoded_name))
            + encoded_name
            + _ROW_COUNT.pack(matrix.shape[1])
        )
        blocks.append(matrix.tobytes())
    if n_blocks is None or n_blocks > 0x7FFFFFFF:
        raise ValidationError(f"partial frame cannot hold {n_blocks} blocks")
    header = _HEADER.pack(MAGIC, WIRE_VERSION_PARTIAL, len(partials), n_blocks)
    return header + b"".join(table) + b"".join(blocks)


def _check_partial_counts(name: str, matrix: np.ndarray) -> None:
    """Histogram counts only: finite, non-negative, integer-valued."""
    if not np.all(np.isfinite(matrix)):
        raise ValidationError(
            f"partial counts for {name!r} contain non-finite values"
        )
    if matrix.size and float(matrix.min()) < 0.0:
        raise ValidationError(
            f"partial counts for {name!r} contain negative values"
        )
    if not np.array_equal(matrix, np.floor(matrix)):
        raise ValidationError(
            f"partial counts for {name!r} are not integer-valued "
            "histogram counts"
        )


def split_partial(payload) -> tuple:
    """Decode a leading version 3 frame; return ``(partials, remainder)``.

    The sync-body decoder: a push/pull body is one partial frame,
    optionally followed by concatenated labeled record frames (a
    training worker's row buffer).  ``remainder`` is the bytes after the
    partial frame (empty when the body is the frame alone), ready for
    :func:`iter_labeled_frames`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.wire import encode_partial, split_partial
    >>> frame = encode_partial({"x": np.array([[1.0, 0.0]])})
    >>> partials, rest = split_partial(frame + b"tail")
    >>> partials["x"].tolist(), bytes(rest)
    ([[1.0, 0.0]], b'tail')
    """
    view = memoryview(payload)
    end = len(view)
    if end < _HEADER.size:
        raise ValidationError(
            f"truncated partial frame: {end} byte(s), header needs "
            f"{_HEADER.size}"
        )
    magic, version, n_attributes, n_blocks = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise ValidationError(
            f"bad frame magic {bytes(magic)!r}; expected {MAGIC!r} "
            f"(is the body really {CONTENT_TYPE_PARTIAL}?)"
        )
    if version != WIRE_VERSION_PARTIAL:
        raise ValidationError(
            f"expected a version {WIRE_VERSION_PARTIAL} partial frame, "
            f"got version {version}"
        )
    if n_attributes < 1:
        raise ValidationError("a partial frame needs at least one attribute")
    if n_blocks < 1:
        raise ValidationError(
            f"partial frame declares {n_blocks} class block(s); needs >= 1"
        )
    offset = _HEADER.size
    names = []
    bins = []
    for _ in range(n_attributes):
        if end - offset < _NAME_LEN.size:
            raise ValidationError("truncated partial frame attribute table")
        (name_len,) = _NAME_LEN.unpack_from(view, offset)
        offset += _NAME_LEN.size
        if end - offset < name_len + _ROW_COUNT.size:
            raise ValidationError("truncated partial frame attribute table")
        try:
            name = str(view[offset : offset + name_len], "utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(f"attribute name is not UTF-8: {exc}") from exc
        offset += name_len
        (bin_count,) = _ROW_COUNT.unpack_from(view, offset)
        offset += _ROW_COUNT.size
        if name in names:
            raise ValidationError(f"duplicate attribute {name!r} in frame")
        if bin_count < 1:
            raise ValidationError(
                f"partial frame: attribute {name!r} declares 0 bins"
            )
        names.append(name)
        bins.append(bin_count)
    total_cells = n_blocks * sum(bins)
    if total_cells > _MAX_FRAME_CELLS:
        raise WireFormatError(
            f"partial frame declares {n_blocks} block(s) x {sum(bins)} "
            f"bin(s) = {total_cells} cells; the decoder caps frames at "
            f"{_MAX_FRAME_CELLS}"
        )
    partials = {}
    for name, bin_count in zip(names, bins):
        n_values = n_blocks * bin_count
        nbytes = n_values * _F8.itemsize
        if end - offset < nbytes:
            raise ValidationError(
                f"truncated partial frame: attribute {name!r} declares "
                f"{n_blocks} x {bin_count} counts but only {end - offset} "
                "byte(s) remain"
            )
        flat = np.frombuffer(view, dtype=_F8, count=n_values, offset=offset)
        matrix = flat.reshape(n_blocks, bin_count)
        _check_partial_counts(name, matrix)
        partials[name] = matrix
        offset += nbytes
    return partials, view[offset:]


def decode_partial(payload) -> dict:
    """Decode a body holding exactly one version 3 partial frame.

    The inverse of :func:`encode_partial`: returns the
    ``{attribute: (n_blocks, bins) counts}`` mapping, with every count
    validated finite, non-negative, and integer-valued.  Trailing bytes
    are an error — bodies that append labeled record frames after the
    partial go through :func:`split_partial`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.wire import decode_partial, encode_partial
    >>> partials = decode_partial(encode_partial({"x": np.eye(2)}))
    >>> sorted(partials), partials["x"].shape
    (['x'], (2, 2))
    """
    partials, rest = split_partial(payload)
    if len(rest):
        raise ValidationError(
            f"{len(rest)} trailing byte(s) after the partial frame; "
            "partial-plus-rows bodies decode with split_partial()"
        )
    return partials


#: a varint never needs more than 10 bytes (70 value bits > 64)
_VARINT_MAX_BYTES = 10


def _encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer (7 value bits per byte)."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(view: memoryview, offset: int, end: int, what: str) -> tuple:
    """Decode one LEB128 varint; return ``(value, next_offset)``."""
    value = 0
    shift = 0
    for length in range(1, _VARINT_MAX_BYTES + 1):
        chunk = view[offset : offset + 1] if offset < end else b""
        if not len(chunk):
            raise ValidationError(f"truncated basket frame: {what} varint")
        byte = chunk[0]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if value >= 1 << 64:
                raise ValidationError(
                    f"basket frame: {what} varint exceeds 64 bits"
                )
            return value, offset
        shift += 7
    raise ValidationError(
        f"basket frame: {what} varint runs past {_VARINT_MAX_BYTES} bytes"
    )


def encode_baskets(baskets, *, shard: int | None = None) -> bytes:
    """Encode a boolean transaction matrix as one version 4 basket frame.

    ``baskets`` is the mining stack's native shape — a 2-D boolean
    matrix, one row per transaction, one column per item (what
    :func:`repro.mining.generate_baskets` produces and
    :class:`repro.mining.RandomizedResponse` randomizes).  Each row is
    shipped as the varint list of its set-column ids, so sparse baskets
    cost bytes proportional to their items, not to the item universe.
    Empty transactions (all-false rows — MASK randomization can produce
    them) encode as a zero-length id list.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.wire import decode_baskets, encode_baskets
    >>> matrix = np.array([[True, False, True], [False, False, False]])
    >>> frame = encode_baskets(matrix, shard=1)
    >>> frame[:4]
    b'PPDM'
    >>> decoded, shard = decode_baskets(frame)
    >>> decoded.tolist(), shard
    ([[True, False, True], [False, False, False]], 1)
    """
    matrix = np.asarray(baskets)
    if matrix.ndim != 2:
        raise ValidationError(
            f"baskets must be a 2-D boolean matrix, got shape {matrix.shape}"
        )
    if matrix.dtype != np.bool_:
        raise ValidationError(
            f"baskets must be a boolean matrix, got dtype {matrix.dtype}"
        )
    n_transactions, n_items = matrix.shape
    if n_transactions < 1:
        raise ValidationError("a basket frame needs at least one transaction")
    if not 1 <= n_items <= 0xFFFF:
        raise ValidationError(
            f"a basket frame holds 1..65535 items, got {n_items}"
        )
    index = []
    payload = []
    for row in matrix:
        encoded = b"".join(
            _encode_varint(int(item)) for item in np.nonzero(row)[0]
        )
        index.append(_encode_varint(len(encoded)))
        payload.append(encoded)
    header = _HEADER.pack(
        MAGIC, WIRE_VERSION_BASKETS, n_items, -1 if shard is None else int(shard)
    )
    return (
        header
        + _encode_varint(n_transactions)
        + b"".join(index)
        + b"".join(payload)
    )


def _decode_basket_frame(view: memoryview, offset: int) -> tuple:
    """Decode one basket frame at ``offset``.

    Returns ``(matrix, shard, next_offset)``.
    """
    end = len(view)
    if end - offset < _HEADER.size:
        raise ValidationError(
            f"truncated basket frame: {end - offset} byte(s) left, "
            f"header needs {_HEADER.size}"
        )
    magic, version, n_items, shard = _HEADER.unpack_from(view, offset)
    if magic != MAGIC:
        raise ValidationError(
            f"bad frame magic {bytes(magic)!r}; expected {MAGIC!r} "
            f"(is the body really {CONTENT_TYPE_BASKETS}?)"
        )
    if version != WIRE_VERSION_BASKETS:
        raise ValidationError(
            f"expected a version {WIRE_VERSION_BASKETS} basket frame, "
            f"got version {version} (record frames go through "
            f"{CONTENT_TYPE_COLUMNS})"
        )
    if n_items < 1:
        raise ValidationError("basket frame declares an empty item universe")
    offset += _HEADER.size
    n_transactions, offset = _decode_varint(view, offset, end, "transaction count")
    if n_transactions < 1:
        raise ValidationError("basket frame declares no transactions")
    if n_transactions > end - offset:
        # each transaction needs at least one index byte
        raise ValidationError(
            f"truncated basket frame: {n_transactions} transaction(s) "
            f"declared but only {end - offset} byte(s) remain"
        )
    if n_transactions * n_items > _MAX_FRAME_CELLS:
        raise WireFormatError(
            f"basket frame expands to {n_transactions} x {n_items} cells; "
            f"the decoder caps frames at {_MAX_FRAME_CELLS}"
        )
    lengths = []
    for i in range(n_transactions):
        length, offset = _decode_varint(view, offset, end, f"index[{i}]")
        lengths.append(length)
    matrix = np.zeros((n_transactions, n_items), dtype=bool)
    for i, length in enumerate(lengths):
        if end - offset < length:
            raise ValidationError(
                f"truncated basket frame: transaction {i} declares "
                f"{length} byte(s) but only {end - offset} remain"
            )
        stop = offset + length
        previous = -1
        while offset < stop:
            item, offset = _decode_varint(view, offset, stop, f"transaction {i}")
            if item >= n_items:
                raise ValidationError(
                    f"basket frame: transaction {i} holds item {item}, "
                    f"outside the declared universe of {n_items}"
                )
            if item <= previous:
                raise ValidationError(
                    f"basket frame: transaction {i} item ids must be "
                    f"strictly increasing ({item} after {previous})"
                )
            matrix[i, item] = True
            previous = item
    return matrix, (None if shard < 0 else shard), offset


def decode_baskets(payload) -> tuple:
    """Decode a single basket frame; return ``(matrix, shard)``.

    The inverse of :func:`encode_baskets`.  Trailing bytes after the
    frame are an error; bodies carrying several concatenated frames go
    through :func:`iter_basket_frames`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.wire import decode_baskets, encode_baskets
    >>> matrix, shard = decode_baskets(encode_baskets(np.eye(2, dtype=bool)))
    >>> matrix.tolist(), shard
    ([[True, False], [False, True]], None)
    """
    view = memoryview(payload)
    matrix, shard, offset = _decode_basket_frame(view, 0)
    if offset != len(view):
        raise ValidationError(
            f"{len(view) - offset} trailing byte(s) after the basket frame; "
            "multi-frame bodies decode with iter_basket_frames()"
        )
    return matrix, shard


def iter_basket_frames(payload):
    """Yield ``(matrix, shard)`` for every basket frame in ``payload``.

    The decoder behind ``POST /ingest`` with
    ``Content-Type: application/x-ppdm-baskets``: frames are
    self-delimiting, so one body may concatenate any number of them.
    Every frame must share one item universe with its predecessors —
    mixed widths (or a stray v1-v3 frame) are a malformed body.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.wire import encode_baskets, iter_basket_frames
    >>> body = encode_baskets(np.eye(2, dtype=bool)) + encode_baskets(
    ...     np.zeros((1, 2), dtype=bool), shard=1
    ... )
    >>> [(int(m.sum()), s) for m, s in iter_basket_frames(body)]
    [(2, None), (0, 1)]
    """
    view = memoryview(payload)
    offset = 0
    n_items = None
    while offset < len(view):
        matrix, shard, offset = _decode_basket_frame(view, offset)
        if n_items is None:
            n_items = matrix.shape[1]
        elif matrix.shape[1] != n_items:
            raise ValidationError(
                f"basket body mixes item universes: frame declares "
                f"{matrix.shape[1]} item(s), previous frames {n_items}"
            )
        yield matrix, shard


def encode_ndjson(frames) -> bytes:
    """Encode ``(batch, shard)`` pairs as newline-delimited JSON.

    The curl-able fallback with the same many-batches-per-body shape as
    the columnar format: each line is exactly a ``POST /ingest`` JSON
    body (``{"batch": {...}, "shard": i}``, the shard key omitted when
    unpinned).

    Examples
    --------
    >>> from repro.service.wire import encode_ndjson
    >>> encode_ndjson([({"x": [0.5]}, None), ({"x": [0.9]}, 1)])
    b'{"batch": {"x": [0.5]}}\\n{"batch": {"x": [0.9]}, "shard": 1}\\n'
    """
    lines = []
    for batch, shard in frames:
        if not isinstance(batch, dict):
            raise ValidationError("batch must map attribute -> values")
        payload = {
            "batch": {
                name: np.asarray(values, dtype=float).tolist()
                for name, values in batch.items()
            }
        }
        if shard is not None:
            payload["shard"] = int(shard)
        lines.append(json.dumps(payload).encode())
    return b"\n".join(lines) + (b"\n" if lines else b"")


def iter_ndjson(payload):
    """Yield ``(batch, shard)`` for every line of an NDJSON body.

    Blank lines are skipped, so trailing newlines and curl-assembled
    bodies are fine.  Each line must carry a ``"batch"`` object; an
    optional integer ``"shard"`` pins the batch.  Lines carrying a
    ``"classes"`` column are rejected so labels can never be silently
    dropped — iterate those with :func:`iter_labeled_ndjson`.

    Examples
    --------
    >>> from repro.service.wire import iter_ndjson
    >>> list(iter_ndjson(b'{"batch": {"x": [0.5]}, "shard": 0}\\n'))
    [({'x': [0.5]}, 0)]
    """
    for batch, classes, shard in iter_labeled_ndjson(payload):
        if classes is not None:
            raise ValidationError(
                "NDJSON line carries a 'classes' column; iterate with "
                "iter_labeled_ndjson()"
            )
        yield batch, shard


def iter_labeled_ndjson(payload):
    """Yield ``(batch, classes, shard)`` for every line of an NDJSON body.

    Like :func:`iter_ndjson`, plus an optional ``"classes"`` key per
    line: a JSON list with one integer class label per record
    (``None`` when absent — the unlabeled partition).

    Examples
    --------
    >>> from repro.service.wire import iter_labeled_ndjson
    >>> body = b'{"batch": {"x": [0.5]}, "classes": [1], "shard": 0}\\n'
    >>> list(iter_labeled_ndjson(body))
    [({'x': [0.5]}, [1], 0)]
    """
    for lineno, line in enumerate(bytes(payload).splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(
                f"NDJSON line {lineno} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict) or "batch" not in record:
            raise ValidationError(
                f'NDJSON line {lineno} must be {{"batch": {{name: [values]}}}}'
            )
        batch = record["batch"]
        if not isinstance(batch, dict):
            raise ValidationError(
                f"NDJSON line {lineno}: 'batch' must map attribute -> values"
            )
        shard = record.get("shard")
        if shard is not None and not isinstance(shard, int):
            raise ValidationError(
                f"NDJSON line {lineno}: 'shard' must be an integer, "
                f"got {type(shard).__name__}"
            )
        classes = record.get("classes")
        if classes is not None and not isinstance(classes, list):
            raise ValidationError(
                f"NDJSON line {lineno}: 'classes' must be a list of "
                f"integer labels, got {type(classes).__name__}"
            )
        yield batch, classes, shard


def supported_codecs() -> tuple:
    """Return the codec tokens this process can decode, identity first.

    zstd appears only when the optional ``zstandard`` package imports —
    the tuple is what a 415 response advertises, so clients learn
    exactly which ``Content-Encoding`` values this server accepts.

    Examples
    --------
    >>> from repro.service.wire import supported_codecs
    >>> supported_codecs()[:2]
    ('identity', 'zlib')
    """
    if _zstandard is None:
        return (WIRE_CODEC_IDENTITY, WIRE_CODEC_ZLIB)
    return (WIRE_CODEC_IDENTITY, WIRE_CODEC_ZLIB, WIRE_CODEC_ZSTD)


def resolve_codec(token) -> str | None:
    """Normalize a ``Content-Encoding`` token to a supported codec name.

    Returns one of :func:`supported_codecs` — ``None``/empty/
    ``identity`` map to :data:`WIRE_CODEC_IDENTITY`, ``deflate`` is an
    alias for zlib — or ``None`` when the token names a codec this
    process cannot decode (unknown encodings, or zstd without the
    ``zstandard`` package).  Matching is case-insensitive and ignores
    surrounding whitespace, per RFC 9110.

    Examples
    --------
    >>> from repro.service.wire import resolve_codec
    >>> resolve_codec(None), resolve_codec(" ZLIB "), resolve_codec("deflate")
    ('identity', 'zlib', 'zlib')
    >>> resolve_codec("br") is None
    True
    """
    if token is None:
        return WIRE_CODEC_IDENTITY
    name = str(token).strip().lower()
    if name in ("", WIRE_CODEC_IDENTITY):
        return WIRE_CODEC_IDENTITY
    if name in (WIRE_CODEC_ZLIB, "deflate"):
        return WIRE_CODEC_ZLIB
    if name == WIRE_CODEC_ZSTD and _zstandard is not None:
        return WIRE_CODEC_ZSTD
    return None


def compress_payload(payload, codec: str) -> bytes:
    """Compress an encoded wire body with ``codec``.

    The single compression implementation behind ``ppdm ingest --codec``
    and the cluster tier's :class:`~repro.service.PartialShipper`:
    ``identity`` returns the bytes unchanged, ``zlib`` uses the stdlib
    at its default level, ``zstd`` needs the optional ``zstandard``
    package.  The codec applies to the *whole* request body — any
    number of concatenated frames, any mix of versions — and rides the
    ``Content-Encoding`` header, never the frame bytes themselves.

    Examples
    --------
    >>> from repro.service.wire import compress_payload, decompress_payload
    >>> body = b"PPDM" + bytes(1000)
    >>> wire = compress_payload(body, "zlib")
    >>> len(wire) < len(body)
    True
    >>> decompress_payload(wire, "zlib", max_decoded=2000) == body
    True
    """
    data = bytes(payload)
    if codec == WIRE_CODEC_IDENTITY:
        return data
    if codec == WIRE_CODEC_ZLIB:
        return zlib.compress(data)
    if codec == WIRE_CODEC_ZSTD:
        if _zstandard is None:
            raise ValidationError(
                "the zstd codec needs the optional zstandard package"
            )
        return _zstandard.ZstdCompressor().compress(data)
    raise ValidationError(
        f"unknown codec {codec!r}; this process supports "
        f"{', '.join(supported_codecs())}"
    )


def decompress_payload(payload, codec: str, *, max_decoded: int) -> bytes:
    """Decompress a request body, bounded by an explicit decoded-size cap.

    The inverse of :func:`compress_payload`, and the only decode path
    the HTTP front end uses: a compressed body breaks the
    ``Content-Length ≈ decoded size`` assumption, so the decoder never
    trusts the stream — zlib decodes through a streamed
    ``decompressobj`` with ``max_length`` and zstd through its own
    output-size bound.  A stream that would expand past ``max_decoded``
    raises :class:`~repro.exceptions.DecodedSizeError` (mapped to 413);
    truncated or corrupt streams raise
    :class:`~repro.exceptions.WireFormatError` (mapped to 400).  Either
    way the caller has already read the full wire body, so a keep-alive
    connection stays usable.

    Examples
    --------
    >>> import zlib
    >>> from repro.service.wire import decompress_payload
    >>> decompress_payload(zlib.compress(b"frame"), "zlib", max_decoded=64)
    b'frame'
    >>> decompress_payload(zlib.compress(bytes(10_000)), "zlib", max_decoded=64)
    Traceback (most recent call last):
        ...
    repro.exceptions.DecodedSizeError: zlib body expands past the 64-byte decoded-size cap
    """
    data = bytes(payload)
    cap = int(max_decoded)
    if cap < 1:
        raise ValidationError(f"max_decoded must be positive, got {max_decoded}")
    if codec == WIRE_CODEC_IDENTITY:
        if len(data) > cap:
            raise DecodedSizeError(
                f"body is {len(data)} byte(s); the decoder caps bodies "
                f"at {cap}"
            )
        return data
    if codec == WIRE_CODEC_ZLIB:
        engine = zlib.decompressobj()
        try:
            decoded = engine.decompress(data, cap + 1)
        except zlib.error as exc:
            raise WireFormatError(f"corrupt zlib body: {exc}") from exc
        if len(decoded) > cap:
            raise DecodedSizeError(
                f"zlib body expands past the {cap}-byte decoded-size cap"
            )
        if not engine.eof:
            raise WireFormatError(
                "truncated zlib body: the stream ends mid-block"
            )
        if engine.unused_data:
            raise WireFormatError(
                f"{len(engine.unused_data)} trailing byte(s) after the "
                "zlib stream"
            )
        return decoded
    if codec == WIRE_CODEC_ZSTD:
        if _zstandard is None:
            raise ValidationError(
                "the zstd codec needs the optional zstandard package"
            )
        try:
            declared = _zstandard.frame_content_size(data)
        except _zstandard.ZstdError as exc:
            raise WireFormatError(f"corrupt zstd body: {exc}") from exc
        if declared not in (-1,) and declared > cap:
            raise DecodedSizeError(
                f"zstd body declares {declared} decoded byte(s); the "
                f"decoder caps bodies at {cap}"
            )
        try:
            return _zstandard.ZstdDecompressor().decompress(
                data, max_output_size=cap
            )
        except _zstandard.ZstdError as exc:
            text = str(exc).lower()
            if "output size" in text or "too small" in text:
                raise DecodedSizeError(
                    f"zstd body expands past the {cap}-byte decoded-size cap"
                ) from exc
            raise WireFormatError(
                f"corrupt or truncated zstd body: {exc}"
            ) from exc
    raise ValidationError(
        f"unknown codec {codec!r}; this process supports "
        f"{', '.join(supported_codecs())}"
    )


def _has_quantized_columns(batch) -> bool:
    """True when any decoded column carries bin indices (int8/int16)."""
    return any(
        isinstance(values, np.ndarray) and values.dtype.kind in "iu"
        for values in batch.values()
    )
