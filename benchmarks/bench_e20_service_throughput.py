"""E20 — Sharded aggregation service vs the single-stream serving loop.

The paper's deployment is a server absorbing randomized disclosures from
many providers while analysts query reconstructed distributions.  The
pre-service pattern (examples/streaming_survey.py before PR 3) pushed
every batch through one :class:`StreamingReconstructor` per attribute and
refreshed the estimate after each batch so queries stayed current —
paying warm-started Bayes sweeps on *every* ingest.

:class:`repro.service.AggregationService` decouples the two planes:
ingestion workers accumulate O(batch) histogram partials into shards,
and a refresh merges partials in O(shards x bins) when an analyst asks.
This benchmark measures ingest throughput (records/sec) of the service
at 1, 2, and 4 shards with 4 worker threads against the single-stream
refresh-per-batch loop on identical disclosures, and asserts:

* the service's final estimates are **bit-identical** to a single-stream
  reconstructor fed the same disclosures (at every shard count), and
* the 4-shard service ingests at >= 2x the single-stream loop's rate.

On a single core the shard counts tie (sharding is about contention-free
concurrency, not about doing less work); the >= 2x win is architectural —
deferred, merge-based refreshes instead of per-batch sweeps.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from _common import experiment, run_experiment

from repro.core import KernelCache, Partition, StreamingReconstructor, UniformRandomizer
from repro.experiments.reporting import format_table
from repro.service import AggregationService, AttributeSpec
from repro.utils.rng import ensure_rng

N_ATTRIBUTES = 4
N_BATCHES = 96
N_WORKERS = 4
SHARD_COUNTS = (1, 2, 4)
REPEATS = 3


def _throughput_floor_scale() -> float:
    """Scales the wall-clock throughput threshold (parity asserts are
    unaffected).  Shared CI runners set this below 1 so a noisy neighbour
    cannot flake the build while a real regression still fails."""
    return float(os.environ.get("PPDM_E20_THROUGHPUT_FLOOR", "1.0"))


def _specs():
    """Four attributes with distinct domains (one kernel each)."""
    specs = []
    for j in range(N_ATTRIBUTES):
        low, high = float(10 * j), float(10 * j + 8 + j)
        partition = Partition.uniform(low, high, 24)
        noise = UniformRandomizer.from_privacy(1.0, high - low)
        specs.append(AttributeSpec(f"a{j}", partition, noise))
    return specs


def _disclosures(specs, n_per_attribute: int, seed: int):
    """Pre-generated randomized batches: ``batches[b][name] -> values``."""
    rng = ensure_rng(seed)
    per_batch = n_per_attribute // N_BATCHES
    batches = []
    for _ in range(N_BATCHES):
        batch = {}
        for j, spec in enumerate(specs):
            low, high = spec.x_partition.low, spec.x_partition.high
            span = high - low
            center = low + span * (0.3 + 0.05 * j)
            x = np.clip(rng.normal(center, 0.15 * span, per_batch), low, high)
            batch[spec.name] = spec.randomizer.randomize(x, seed=rng)
        batches.append(batch)
    return batches


def _run_single_stream(specs, batches) -> tuple:
    """The pre-service loop: per-batch update + estimate refresh."""
    cache = KernelCache()
    streams = {
        spec.name: StreamingReconstructor(
            spec.x_partition, spec.randomizer, kernel_cache=cache
        )
        for spec in specs
    }
    start = time.perf_counter()
    for batch in batches:
        for name, values in batch.items():
            streams[name].update(values)
            streams[name].estimate()
    return time.perf_counter() - start, streams


def _run_service(specs, batches, n_shards: int) -> tuple:
    """Service ingestion: worker threads pinned to shards, one final merge."""
    service = AggregationService(specs, n_shards=n_shards)
    assignments = [batches[w::N_WORKERS] for w in range(N_WORKERS)]

    def worker(index: int) -> None:
        shard = index % n_shards
        for batch in assignments[index]:
            service.ingest(batch, shard=shard)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_WORKERS) as pool:
        list(pool.map(worker, range(N_WORKERS)))
    estimates = service.estimate_all()
    return time.perf_counter() - start, service, estimates


def _assert_parity(specs, batches, estimates) -> None:
    """Service estimates must be bitwise the single-stream estimates."""
    cache = KernelCache()
    for spec in specs:
        stream = StreamingReconstructor(
            spec.x_partition, spec.randomizer, kernel_cache=cache
        )
        for batch in batches:
            stream.update(batch[spec.name])
        reference = stream.estimate()
        result = estimates[spec.name]
        assert np.array_equal(
            reference.distribution.probs, result.distribution.probs
        ), spec.name
        assert reference.n_iterations == result.n_iterations, spec.name
        assert reference.chi2_statistic == result.chi2_statistic, spec.name


@experiment(
    "e20",
    title="Sharded aggregation service ingest throughput",
    tags=("service", "smoke"),
    seed=7,
)
def run_e20(ctx):
    n_per_attribute = ctx.scaled(96_000)
    specs = _specs()
    batches = _disclosures(specs, n_per_attribute, seed=ctx.seed)
    n_records = sum(batch[s.name].size for batch in batches for s in specs)
    ctx.record(
        n_records=n_records,
        n_attributes=N_ATTRIBUTES,
        n_batches=N_BATCHES,
        n_workers=N_WORKERS,
        noise="uniform",
    )

    single_seconds = float("inf")
    for _ in range(REPEATS):
        seconds, _streams = _run_single_stream(specs, batches)
        single_seconds = min(single_seconds, seconds)

    service_seconds = {}
    estimates_by_shards = {}
    kernel_misses = None
    for n_shards in SHARD_COUNTS:
        best = float("inf")
        for _ in range(REPEATS):
            seconds, service, estimates = _run_service(specs, batches, n_shards)
            best = min(best, seconds)
        service_seconds[n_shards] = best
        estimates_by_shards[n_shards] = estimates
        kernel_misses = service.engine.kernel_cache.misses

    for estimates in estimates_by_shards.values():
        _assert_parity(specs, batches, estimates)

    single_rate = n_records / single_seconds
    rows = [
        (
            "single-stream (refresh/batch)",
            "-",
            f"{single_seconds * 1e3:.1f}",
            f"{single_rate:,.0f}",
            "1.00x",
        )
    ]
    for n_shards in SHARD_COUNTS:
        rate = n_records / service_seconds[n_shards]
        rows.append(
            (
                "service (deferred refresh)",
                str(n_shards),
                f"{service_seconds[n_shards] * 1e3:.1f}",
                f"{rate:,.0f}",
                f"{rate / single_rate:.2f}x",
            )
        )
    speedup = (n_records / service_seconds[4]) / single_rate
    table_text = format_table(
        ("ingest path", "shards", "wall ms", "records/s", "vs single"),
        rows,
        title=(
            f"E20: ingest throughput, {N_ATTRIBUTES} attributes x "
            f"{n_per_attribute} records, {N_WORKERS} workers"
        ),
    )
    summary = (
        f"\n4-shard speedup vs single-stream loop = {speedup:.2f}x"
        f"\nestimates bit-identical to the single-stream reconstructor "
        f"at every shard count"
    )
    ctx.report(table_text + summary, name="e20_service_throughput")
    ctx.record_timing(
        single_stream_ms=single_seconds * 1e3,
        speedup_4_shards=speedup,
        **{
            f"service_{k}_shards_ms": v * 1e3
            for k, v in service_seconds.items()
        },
    )

    floor = 2.0 * _throughput_floor_scale()
    assert speedup >= floor, f"expected >= {floor:.2f}x, got {speedup:.2f}x"
    # One kernel per attribute, shared across every shard count's service
    # (the benchmark builds fresh caches per service, so misses are per run).
    assert kernel_misses == N_ATTRIBUTES

    final = estimates_by_shards[SHARD_COUNTS[-1]]
    return {
        "bit_identical": True,
        "total_sweeps_final_refresh": int(
            sum(result.n_iterations for result in final.values())
        ),
        "all_converged": bool(all(r.converged for r in final.values())),
    }


def test_e20_service_throughput(benchmark):
    run_experiment(benchmark, "e20")
