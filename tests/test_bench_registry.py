"""Tests for the benchmark experiment registry and discovery."""

from __future__ import annotations

import sys

import pytest

from repro.bench import REGISTRY, discover, experiment
from repro.bench.registry import (
    Experiment,
    ExperimentRegistry,
    _natural_key,
    default_benchmarks_dir,
)
from repro.exceptions import BenchmarkError


def _make_fn(tag: str):
    """A function with its own synthetic definition site.

    Registration treats same-id functions defined at the same site as a
    re-import of one experiment; tests that want genuine collisions need
    genuinely distinct sites.
    """
    namespace = {}
    exec(compile("def run(ctx):\n    return {}\n", f"<{tag}>", "exec"), namespace)
    return namespace["run"]


def _spec(experiment_id, **kwargs):
    defaults = dict(title="t", tags=(), seed=1, module="m")
    defaults.update(kwargs)
    defaults.setdefault("fn", _make_fn(f"{experiment_id}@{defaults['module']}"))
    return Experiment(id=experiment_id, **defaults)


class TestRegistry:
    def test_register_and_get(self):
        registry = ExperimentRegistry()
        spec = _spec("e1")
        registry.register(spec)
        assert registry.get("e1") is spec
        assert "e1" in registry
        assert len(registry) == 1

    def test_duplicate_id_rejected(self):
        registry = ExperimentRegistry()
        registry.register(_spec("e1", module="first"))
        with pytest.raises(BenchmarkError, match="duplicate experiment id"):
            registry.register(_spec("e1", module="second"))

    def test_duplicate_error_names_prior_module(self):
        registry = ExperimentRegistry()
        registry.register(_spec("e1", module="mod_a"))
        with pytest.raises(BenchmarkError, match="mod_a"):
            registry.register(_spec("e1", module="mod_b"))

    def test_invalid_id_rejected(self):
        registry = ExperimentRegistry()
        for bad in ("", "has space", "semi;colon", "_leading"):
            with pytest.raises(BenchmarkError, match="invalid experiment id"):
                registry.register(_spec(bad))

    def test_unknown_id_lists_known(self):
        registry = ExperimentRegistry()
        registry.register(_spec("e1"))
        with pytest.raises(BenchmarkError, match="registered: e1"):
            registry.get("nope")

    def test_ids_naturally_sorted(self):
        registry = ExperimentRegistry()
        for experiment_id in ("e10", "e2", "e1", "e19_local"):
            registry.register(_spec(experiment_id))
        assert registry.ids() == ("e1", "e2", "e10", "e19_local")

    def test_select_by_tags_any_match(self):
        registry = ExperimentRegistry()
        registry.register(_spec("e1", tags=("smoke", "fast")))
        registry.register(_spec("e2", tags=("slow",)))
        registry.register(_spec("e3", tags=("smoke",)))
        selected = registry.select(tags=("smoke",))
        assert [s.id for s in selected] == ["e1", "e3"]
        both = registry.select(tags=("smoke", "slow"))
        assert [s.id for s in both] == ["e1", "e2", "e3"]

    def test_select_by_ids_and_tags(self):
        registry = ExperimentRegistry()
        registry.register(_spec("e1", tags=("smoke",)))
        registry.register(_spec("e2", tags=("smoke",)))
        selected = registry.select(ids=("e2",), tags=("smoke",))
        assert [s.id for s in selected] == ["e2"]

    def test_unknown_tag_rejected(self):
        registry = ExperimentRegistry()
        registry.register(_spec("e1", tags=("smoke",)))
        with pytest.raises(BenchmarkError, match="unknown tags"):
            registry.select(tags=("smoke", "typo"))

    def test_clear(self):
        registry = ExperimentRegistry()
        registry.register(_spec("e1"))
        registry.clear()
        assert len(registry) == 0

    def test_same_definition_site_reregisters_idempotently(self):
        # the same file imported under two module names (pytest + discover)
        registry = ExperimentRegistry()
        fn = _make_fn("shared-site")
        registry.register(_spec("e1", fn=fn, module="bench_e1"))
        replacement = _spec("e1", fn=fn, module="repro_bench_bench_e1")
        registry.register(replacement)
        assert registry.get("e1") is replacement
        assert len(registry) == 1


class TestDecorator:
    def test_registers_and_returns_function(self):
        registry = ExperimentRegistry()

        @experiment("toy", tags=("a",), seed=5, registry=registry)
        def run_toy(ctx):
            return {"x": 1}

        assert registry.get("toy").fn is run_toy
        assert registry.get("toy").seed == 5
        assert run_toy.experiment.id == "toy"
        assert run_toy(None) == {"x": 1}


class TestNaturalKey:
    def test_orders_numbers_numerically(self):
        ids = ["e10", "e9", "e1", "e19_byclass", "e19_local"]
        assert sorted(ids, key=_natural_key) == [
            "e1",
            "e9",
            "e10",
            "e19_byclass",
            "e19_local",
        ]


class TestDiscovery:
    def test_discovers_real_benchmarks(self):
        ids = discover(default_benchmarks_dir())
        assert "e1" in ids
        assert "e19_byclass" in ids and "e19_local" in ids
        # natural order: e2 precedes e10
        assert ids.index("e2") < ids.index("e10")

    def test_discovery_is_deterministic_and_idempotent(self):
        first = discover(default_benchmarks_dir())
        second = discover(default_benchmarks_dir())
        assert first == second
        # re-discovery never re-registers (no duplicate-id explosion)
        assert REGISTRY.select(tags=("smoke",))

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(BenchmarkError, match="does not exist"):
            discover(tmp_path / "nope")

    def test_duplicate_id_across_modules_rejected(self, tmp_path):
        (tmp_path / "bench_a.py").write_text(
            "from repro.bench import experiment\n"
            "@experiment('zz_dup_discovery')\n"
            "def run(ctx):\n    return {}\n"
        )
        (tmp_path / "bench_b.py").write_text(
            "from repro.bench import experiment\n"
            "@experiment('zz_dup_discovery')\n"
            "def run(ctx):\n    return {}\n"
        )
        with pytest.raises(BenchmarkError, match="duplicate experiment id"):
            discover(tmp_path)

    def test_discovery_skips_files_pytest_already_imported(self, tmp_path):
        import uuid
        from importlib import util as importlib_util

        exp_id = f"zz_pyimp_{uuid.uuid4().hex[:8]}"
        path = tmp_path / "bench_pyimported.py"
        path.write_text(
            "from repro.bench import experiment\n"
            f"@experiment({exp_id!r})\n"
            "def run(ctx):\n    return {'ok': 1}\n"
        )
        # simulate pytest importing the file under its bare stem first
        module_name = f"bench_pyimported_{exp_id}"
        spec = importlib_util.spec_from_file_location(module_name, path)
        module = importlib_util.module_from_spec(spec)
        sys.modules[module_name] = module
        spec.loader.exec_module(module)
        try:
            ids = discover(tmp_path)  # must not raise a duplicate-id error
            assert exp_id in ids
            assert REGISTRY.get(exp_id).fn(None) == {"ok": 1}
        finally:
            del sys.modules[module_name]

    def test_rediscovery_repairs_a_cleared_registry(self, tmp_path):
        import uuid

        from repro.bench.registry import ExperimentRegistry, _register_missing

        exp_id = f"zz_clear_{uuid.uuid4().hex[:8]}"
        (tmp_path / "bench_clearable.py").write_text(
            "from repro.bench import experiment\n"
            f"@experiment({exp_id!r}, seed=4)\n"
            "def run(ctx):\n    return {'v': 1}\n"
        )
        assert exp_id in discover(tmp_path)
        spec = REGISTRY.get(exp_id)
        # simulate REGISTRY.clear() for this id without nuking the
        # process-global registry other tests rely on
        REGISTRY._specs.pop(exp_id)
        assert exp_id not in REGISTRY
        ids = discover(tmp_path)  # file already imported: no re-execution
        assert exp_id in ids
        assert REGISTRY.get(exp_id).fn is spec.fn

        # the repair path also works on an explicit empty registry
        fresh = ExperimentRegistry()
        module = next(
            m
            for m in list(sys.modules.values())
            if getattr(m, "__file__", None)
            and str(m.__file__).endswith("bench_clearable.py")
        )
        _register_missing(module, fresh)
        assert exp_id in fresh

    def test_discovery_leaves_sys_path_alone(self, tmp_path):
        (tmp_path / "bench_plain.py").write_text(
            "from repro.bench import experiment\n"
            f"@experiment('zz_syspath_{tmp_path.name}')\n"
            "def run(ctx):\n    return {}\n"
        )
        before = list(sys.path)
        discover(tmp_path)
        assert sys.path == before
