"""E8 — Uniform vs Gaussian noise tradeoff (paper §5 observation).

At matched *95 %-confidence* privacy levels, Gaussian noise concentrates
more mass near zero than uniform noise, so reconstruction-based training
retains more accuracy per unit privacy at the higher privacy levels —
the paper's stated reason for preferring Gaussian when privacy demands
are strict.  We sweep Fn3 with ByClass under both kinds.
"""

from __future__ import annotations

from _common import once, report

from repro.experiments import ClassificationConfig, format_table, run_privacy_sweep
from repro.experiments.config import scaled

LEVELS = (0.5, 1.0, 2.0, 4.0)


def _sweep():
    results = {}
    for noise in ("uniform", "gaussian"):
        config = ClassificationConfig(
            functions=(3,),
            strategies=("byclass",),
            noise=noise,
            n_train=scaled(10_000),
            n_test=scaled(3_000),
            seed=800,
        )
        rows = run_privacy_sweep(config, LEVELS)
        results[noise] = {r.privacy: r.accuracy for r in rows}
    return results


def test_e8_uniform_vs_gaussian(benchmark):
    results = once(benchmark, _sweep)

    table_rows = [
        (noise,) + tuple(f"{100 * results[noise][level]:.1f}" for level in LEVELS)
        for noise in ("uniform", "gaussian")
    ]
    table = format_table(
        ("noise",) + tuple(f"p={level:g}" for level in LEVELS),
        table_rows,
        title="E8: Fn3 ByClass accuracy (%), uniform vs gaussian noise",
    )
    report("e8_uniform_vs_gaussian", table)

    # both kinds must be usable at moderate privacy
    assert results["uniform"][0.5] > 0.8
    assert results["gaussian"][0.5] > 0.8
    # in the paper's regime (up to 100% privacy) Gaussian retains at
    # least comparable accuracy per unit of stated privacy
    assert results["gaussian"][1.0] > results["uniform"][1.0] - 0.03
    # at the extreme levels both decay toward the majority-class floor
    assert results["gaussian"][4.0] > 0.5
    assert results["uniform"][4.0] > 0.5
