"""Value-distortion operators (paper §2, "privacy-preserving methods").

A data provider holding a private value ``x`` discloses ``y = x + r`` where
``r`` is drawn once from a fixed noise distribution known to everyone:

* :class:`UniformRandomizer` — ``r ~ U[-alpha, +alpha]``,
* :class:`GaussianRandomizer` — ``r ~ N(0, sigma^2)``.

The paper's alternative *value-class membership* method (disclose only the
interval containing ``x``) is :class:`ValueClassMembership`, and
:class:`NullRandomizer` is the identity used by the "Original" baseline.

:func:`transition_matrix` builds ``P(Y in interval s | X = midpoint p)``,
the discretized noise kernel shared by the reconstruction algorithms and
the information-theoretic privacy metric.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.partition import Partition
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_1d_array, check_fraction, check_positive


class Randomizer(abc.ABC):
    """Base class: anything that maps private values to disclosed values."""

    #: short name used in experiment tables
    name: str = "randomizer"

    @abc.abstractmethod
    def randomize(self, values, seed=None) -> np.ndarray:
        """Return the disclosed version of ``values`` (never mutates input)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class AdditiveRandomizer(Randomizer):
    """Base class for ``y = x + r`` operators with a symmetric noise density."""

    @abc.abstractmethod
    def noise_pdf(self, delta) -> np.ndarray:
        """Noise density evaluated at ``delta`` (vectorized)."""

    @abc.abstractmethod
    def noise_cdf(self, delta) -> np.ndarray:
        """Noise CDF evaluated at ``delta`` (vectorized)."""

    @abc.abstractmethod
    def sample_noise(self, n: int, seed=None) -> np.ndarray:
        """Draw ``n`` noise values."""

    @abc.abstractmethod
    def privacy_interval_width(self, confidence: float) -> float:
        """Width ``W(c)`` of the shortest interval holding ``r`` with prob. ``c``.

        This is the paper's privacy metric: knowing ``y``, the value ``x``
        lies in an interval of width ``W(c)`` with ``c`` confidence.
        """

    @abc.abstractmethod
    def support_half_width(self, coverage: float = 1.0 - 1e-9) -> float:
        """Half-width that contains ``coverage`` of the noise mass.

        Finite for uniform noise; a high quantile for Gaussian noise.  Used
        to size the expanded partition that buckets randomized values.
        """

    def randomize(self, values, seed=None) -> np.ndarray:
        arr = check_1d_array(values, "values", allow_empty=True)
        return arr + self.sample_noise(arr.size, seed)


@dataclass(frozen=True, repr=False)
class UniformRandomizer(AdditiveRandomizer):
    """Additive uniform noise on ``[-half_width, +half_width]``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import UniformRandomizer
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> w = noise.randomize([0.5, 0.5, 0.5], seed=0)
    >>> bool(np.all(np.abs(w - 0.5) <= 0.25))
    True
    >>> noise.privacy_interval_width(0.95)  # the paper's W(95%)
    0.475
    """

    half_width: float
    name = "uniform"

    def __post_init__(self) -> None:
        check_positive(self.half_width, "half_width")

    @classmethod
    def from_privacy(
        cls, privacy: float, domain_span: float, confidence: float = 0.95
    ) -> "UniformRandomizer":
        """Size the noise so privacy at ``confidence`` is ``privacy * domain_span``.

        ``privacy`` follows the paper's convention: ``1.0`` means "100 %
        privacy", i.e. the 95 %-confidence interval for ``x`` given ``y`` is
        as wide as the whole attribute domain.
        """
        check_positive(privacy, "privacy")
        check_positive(domain_span, "domain_span")
        confidence = check_fraction(confidence, "confidence")
        # W(c) = 2 * alpha * c  =>  alpha = W / (2 c)
        return cls(half_width=privacy * domain_span / (2.0 * confidence))

    def noise_pdf(self, delta) -> np.ndarray:
        delta = np.asarray(delta, dtype=float)
        inside = np.abs(delta) <= self.half_width
        return np.where(inside, 1.0 / (2.0 * self.half_width), 0.0)

    def noise_cdf(self, delta) -> np.ndarray:
        delta = np.asarray(delta, dtype=float)
        scaled = (delta + self.half_width) / (2.0 * self.half_width)
        return np.clip(scaled, 0.0, 1.0)

    def sample_noise(self, n: int, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        return rng.uniform(-self.half_width, self.half_width, size=int(n))

    def privacy_interval_width(self, confidence: float) -> float:
        confidence = check_fraction(confidence, "confidence")
        return 2.0 * self.half_width * confidence

    def support_half_width(self, coverage: float = 1.0 - 1e-9) -> float:
        # The support is bounded, so any valid coverage is satisfied by
        # the full half-width — but an invalid coverage must still fail
        # here, not pass silently just because the answer ignores it.
        check_fraction(coverage, "coverage")
        return self.half_width

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformRandomizer(half_width={self.half_width:.6g})"


@dataclass(frozen=True, repr=False)
class GaussianRandomizer(AdditiveRandomizer):
    """Additive Gaussian noise ``N(0, sigma^2)``.

    Examples
    --------
    >>> from repro.core import GaussianRandomizer
    >>> noise = GaussianRandomizer.from_privacy(1.0, domain_span=100.0)
    >>> round(float(noise.sigma), 2)
    25.51
    >>> round(float(noise.privacy_interval_width(0.95)), 6)  # the target back
    100.0
    """

    sigma: float
    name = "gaussian"

    def __post_init__(self) -> None:
        check_positive(self.sigma, "sigma")

    @classmethod
    def from_privacy(
        cls, privacy: float, domain_span: float, confidence: float = 0.95
    ) -> "GaussianRandomizer":
        """Size ``sigma`` so privacy at ``confidence`` is ``privacy * domain_span``."""
        check_positive(privacy, "privacy")
        check_positive(domain_span, "domain_span")
        confidence = check_fraction(confidence, "confidence")
        if confidence == 1.0:
            raise ValidationError(
                "Gaussian noise has unbounded support: confidence must be < 1"
            )
        z = stats.norm.ppf(0.5 + confidence / 2.0)
        return cls(sigma=privacy * domain_span / (2.0 * z))

    def noise_pdf(self, delta) -> np.ndarray:
        delta = np.asarray(delta, dtype=float)
        return stats.norm.pdf(delta, scale=self.sigma)

    def noise_cdf(self, delta) -> np.ndarray:
        delta = np.asarray(delta, dtype=float)
        return stats.norm.cdf(delta, scale=self.sigma)

    def sample_noise(self, n: int, seed=None) -> np.ndarray:
        rng = ensure_rng(seed)
        return rng.normal(0.0, self.sigma, size=int(n))

    def privacy_interval_width(self, confidence: float) -> float:
        confidence = check_fraction(confidence, "confidence")
        if confidence == 1.0:
            return math.inf
        z = stats.norm.ppf(0.5 + confidence / 2.0)
        return 2.0 * z * self.sigma

    def support_half_width(self, coverage: float = 1.0 - 1e-9) -> float:
        coverage = check_fraction(coverage, "coverage")
        if coverage == 1.0:
            raise ValidationError("Gaussian support is unbounded; use coverage < 1")
        return float(stats.norm.ppf(0.5 + coverage / 2.0) * self.sigma)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GaussianRandomizer(sigma={self.sigma:.6g})"


@dataclass(frozen=True, repr=False)
class ValueClassMembership(Randomizer):
    """Disclose only the interval a value belongs to (paper §2, method 1).

    The disclosed value is the midpoint of the interval containing ``x`` —
    a deterministic, discretization-based disclosure.  Privacy at every
    confidence level is the interval width.

    Examples
    --------
    >>> from repro.core import Partition, ValueClassMembership
    >>> vcm = ValueClassMembership(Partition.uniform(0.0, 1.0, 4))
    >>> vcm.randomize([0.1, 0.45, 0.99]).tolist()
    [0.125, 0.375, 0.875]
    >>> vcm.privacy_interval_width(0.95)
    0.25
    """

    partition: Partition
    name = "value-class"

    def randomize(self, values, seed=None) -> np.ndarray:
        arr = check_1d_array(values, "values", allow_empty=True)
        if arr.size == 0:
            # Copy even when empty: randomize() never returns the caller's
            # buffer (matching NullRandomizer and the additive operators).
            return arr.copy()
        return self.partition.midpoints[self.partition.locate(arr)]

    def privacy_interval_width(self, confidence: float) -> float:
        """Interval width is the privacy at every confidence level."""
        check_fraction(confidence, "confidence")
        return float(self.partition.widths.max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValueClassMembership(n_intervals={self.partition.n_intervals})"


class NullRandomizer(Randomizer):
    """Identity disclosure — the "Original" (no privacy) baseline.

    Examples
    --------
    >>> from repro.core import NullRandomizer
    >>> NullRandomizer().randomize([1.0, 2.0]).tolist()
    [1.0, 2.0]
    >>> NullRandomizer().privacy_interval_width(0.95)
    0.0
    """

    name = "none"

    def randomize(self, values, seed=None) -> np.ndarray:
        return check_1d_array(values, "values", allow_empty=True).copy()

    def privacy_interval_width(self, confidence: float) -> float:
        """No privacy at any confidence level."""
        check_fraction(confidence, "confidence")
        return 0.0


def transition_matrix(
    y_partition: Partition,
    x_partition: Partition,
    randomizer: AdditiveRandomizer,
    *,
    method: str = "integrated",
) -> np.ndarray:
    """Discretized noise kernel ``M[s, p] = P(Y in I_s | X = midpoint_p)``.

    Parameters
    ----------
    y_partition:
        Grid bucketing the *randomized* values (usually an expanded copy of
        ``x_partition``; see :meth:`Partition.expanded`).
    x_partition:
        Grid of candidate original values.
    method:
        ``"integrated"`` (default) integrates the noise density over each
        ``y`` interval via the noise CDF — exact for midpoint-valued ``X``.
        ``"density"`` evaluates the density at interval midpoints times the
        interval width, which is the paper's midpoint approximation.

    Returns
    -------
    numpy.ndarray of shape ``(len(y_partition), len(x_partition))`` whose
    columns each sum to (approximately) one when ``y_partition`` covers the
    reachable range of ``Y``.
    """
    x_mid = x_partition.midpoints
    if method == "integrated":
        upper = randomizer.noise_cdf(y_partition.edges[1:, None] - x_mid[None, :])
        lower = randomizer.noise_cdf(y_partition.edges[:-1, None] - x_mid[None, :])
        matrix = upper - lower
    elif method == "density":
        delta = y_partition.midpoints[:, None] - x_mid[None, :]
        matrix = randomizer.noise_pdf(delta) * y_partition.widths[:, None]
    else:
        raise ValidationError(f"unknown transition method: {method!r}")
    return np.clip(matrix, 0.0, None)
