"""Structured findings and the committed-baseline ratchet.

A :class:`Finding` is one rule violation at one source location.  Its
:func:`fingerprint` hashes the rule, file, enclosing scope, and the
*text* of the offending line — not the line number — so unrelated edits
above a baselined finding do not churn the baseline file.

The baseline file (``tools/lint_baseline.txt``) is a ratchet in the
spirit of ``tools/check_coverage.py``: every line is one accepted
pre-existing finding, new findings fail the run, and *stale* entries
(baselined findings that no longer occur) fail too, so the file can
only shrink.  One line per finding::

    RULE  path  scope  fingerprint

Examples
--------
>>> from repro.analysis.findings import Finding, fingerprint
>>> f = Finding(rule="D002", path="examples/demo.py", line=3,
...             scope="main", message="direct RNG construction")
>>> f.location
'examples/demo.py:3'
>>> len(fingerprint(f, "rng = np.random.default_rng(7)"))
12
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.exceptions import AnalysisError

__all__ = [
    "Finding",
    "fingerprint",
    "baseline_key",
    "load_baseline",
    "format_baseline",
    "diff_baseline",
]

#: severities a rule may carry (render-time metadata; both gate CI)
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule identifier (``"L001"``, ``"D002"``, ...).
    path:
        Repository-relative POSIX path of the offending file.
    line:
        1-based line number of the violation.
    scope:
        Dotted name of the enclosing function/class (``"<module>"`` at
        top level) — part of the baseline identity so findings survive
        line-number drift.
    message:
        What is wrong, in one sentence.
    hint:
        How to fix it (shown under the finding in text output).
    severity:
        ``"error"`` or ``"warning"`` (display metadata; both gate).
    digest:
        Content fingerprint, attached by the runner (empty until then).
    """

    rule: str
    path: str
    line: int
    message: str
    scope: str = "<module>"
    hint: str = ""
    severity: str = "error"
    digest: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        """``path:line`` — the clickable anchor for terminals/editors."""
        return f"{self.path}:{self.line}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)


def fingerprint(finding: Finding, line_text: str) -> str:
    """Content hash identifying ``finding`` independent of line numbers.

    Hashes rule, path, scope, and the stripped source line, so inserting
    code above a baselined finding does not invalidate the baseline but
    editing the offending line itself does.
    """
    material = "|".join(
        (finding.rule, finding.path, finding.scope, line_text.strip())
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]


def baseline_key(finding: Finding) -> tuple:
    """The identity a baseline entry records for ``finding``."""
    return (finding.rule, finding.path, finding.scope, finding.digest)


def load_baseline(path: Path) -> Counter:
    """Parse a baseline file into a multiset of accepted finding keys.

    A missing file is an empty baseline (the post-cleanup steady state).
    Blank lines and ``#`` comments are ignored; anything else must be
    the four whitespace-separated fields :func:`format_baseline` writes.
    """
    accepted: Counter = Counter()
    if not Path(path).is_file():
        return accepted
    for lineno, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 4:
            raise AnalysisError(
                f"{path}:{lineno}: baseline lines are "
                f"'RULE path scope fingerprint', got {line!r}"
            )
        accepted[tuple(fields)] += 1
    return accepted


def format_baseline(findings: Iterable[Finding]) -> str:
    """Render findings as baseline file content (sorted, commented)."""
    lines = [
        "# ppdm lint baseline — accepted pre-existing findings.",
        "# One line per finding: RULE path scope fingerprint.",
        "# This file is a ratchet: it may only shrink.  Regenerate with",
        "#   ppdm lint --write-baseline",
        "# after *removing* findings; never hand-add new entries.",
    ]
    entries = sorted(baseline_key(f) for f in findings)
    lines.extend(" ".join(entry) for entry in entries)
    return "\n".join(lines) + "\n"


def diff_baseline(findings: Iterable[Finding], accepted: Counter) -> tuple:
    """Split findings against the baseline multiset.

    Returns ``(new, baselined, stale)``: findings the baseline does not
    cover, findings it does, and accepted entries that no longer occur
    (the ratchet: stale entries must be deleted in the same change).
    """
    remaining = Counter(accepted)
    new = []
    baselined = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = baseline_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale = sorted(remaining.elements())
    return new, baselined, stale
