"""Command-line interface for the PPDM reproduction.

Examples
--------
::

    ppdm reconstruct --shape plateau --noise uniform --privacy 0.5
    ppdm classify --privacy 1.0 --functions 1 2 3
    ppdm sweep --function 3 --levels 0.25 0.5 1.0 2.0
    ppdm privacy --privacy 1.0
    ppdm quest-info

Every subcommand prints the same ASCII tables the benchmark harness
produces, so paper figures can be regenerated without pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.privacy import NOISE_KINDS, noise_for_privacy, privacy_of_randomizer
from repro.datasets import quest
from repro.experiments.classification import (
    run_privacy_sweep,
    run_strategy_comparison,
)
from repro.experiments.config import ClassificationConfig, ReconstructionConfig
from repro.experiments.reconstruction import run_reconstruction
from repro.experiments.reporting import accuracy_matrix, format_table
from repro.tree.pipeline import STRATEGIES


def _add_noise_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--noise", choices=NOISE_KINDS, default="uniform")
    parser.add_argument("--privacy", type=float, default=1.0)
    parser.add_argument("--confidence", type=float, default=0.95)
    parser.add_argument("--seed", type=int, default=7)


def _cmd_reconstruct(args) -> int:
    config = ReconstructionConfig(
        shape=args.shape,
        noise=args.noise,
        privacy=args.privacy,
        confidence=args.confidence,
        n=args.n,
        n_intervals=args.intervals,
        seed=args.seed,
    )
    outcome = run_reconstruction(config)
    print(
        format_table(
            ("midpoint", "true", "original", "randomized", "reconstructed"),
            outcome.rows(),
            title=(
                f"Reconstruction of {args.shape} "
                f"({args.noise} noise, privacy {args.privacy:g})"
            ),
        )
    )
    print(
        f"\nL1(original, randomized)    = {outcome.l1_randomized:.4f}\n"
        f"L1(original, reconstructed) = {outcome.l1_reconstructed:.4f}\n"
        f"iterations = {outcome.n_iterations}"
    )
    return 0


def _cmd_classify(args) -> int:
    config = ClassificationConfig(
        functions=tuple(args.functions),
        strategies=tuple(args.strategies),
        noise=args.noise,
        privacy=args.privacy,
        confidence=args.confidence,
        n_train=args.train,
        n_test=args.test,
        seed=args.seed,
    )
    rows = run_strategy_comparison(config)
    print(
        f"Accuracy (%) at privacy {args.privacy:g} with {args.noise} noise, "
        f"n_train={args.train}:"
    )
    print(accuracy_matrix(rows))
    return 0


def _cmd_sweep(args) -> int:
    config = ClassificationConfig(
        functions=(args.function,),
        strategies=tuple(args.strategies),
        noise=args.noise,
        confidence=args.confidence,
        n_train=args.train,
        n_test=args.test,
        seed=args.seed,
    )
    rows = run_privacy_sweep(config, args.levels)
    table_rows = [
        (f"{row.privacy:g}", row.strategy, f"{100 * row.accuracy:.1f}")
        for row in rows
    ]
    print(
        format_table(
            ("privacy", "strategy", "accuracy %"),
            table_rows,
            title=f"Fn{args.function} accuracy vs privacy ({args.noise} noise)",
        )
    )
    return 0


def _cmd_privacy(args) -> int:
    rows = []
    for name in quest.ATTRIBUTES:
        for kind in NOISE_KINDS:
            randomizer = noise_for_privacy(
                kind, args.privacy, name.span, args.confidence
            )
            parameter = (
                f"alpha={randomizer.half_width:,.0f}"
                if kind == "uniform"
                else f"sigma={randomizer.sigma:,.0f}"
            )
            achieved = privacy_of_randomizer(randomizer, name.span, args.confidence)
            rows.append((name.name, kind, parameter, f"{100 * achieved:.1f}"))
    print(
        format_table(
            ("attribute", "noise", "parameter", "privacy %"),
            rows,
            title=(
                f"Noise parameters for privacy {args.privacy:g} at "
                f"{100 * args.confidence:g}% confidence"
            ),
        )
    )
    return 0


def _cmd_breach(args) -> int:
    import numpy as np

    from repro.core.breach import amplification_factor, breach_analysis
    from repro.core.histogram import HistogramDistribution

    table = quest.generate(args.n, function=1, seed=args.seed)
    attribute = table.attribute(args.attribute)
    partition = attribute.partition(args.intervals)
    prior = HistogramDistribution.from_values(table.column(args.attribute), partition)

    rows = []
    for kind in NOISE_KINDS:
        for level in args.levels:
            randomizer = noise_for_privacy(kind, level, attribute.span)
            analysis = breach_analysis(
                prior, randomizer, rho1=args.rho1, rho2=args.rho2
            )
            gamma = amplification_factor(partition, randomizer)
            rows.append(
                (
                    kind,
                    f"{level:g}",
                    f"{analysis.worst_posterior:.3f}",
                    "yes" if analysis.breached else "no",
                    "inf" if np.isinf(gamma) else f"{gamma:.3g}",
                )
            )
    print(
        format_table(
            ("noise", "privacy", "worst posterior", "breach?", "amplification"),
            rows,
            title=(
                f"Worst-case ({args.rho1:g}, {args.rho2:g}) breach analysis "
                f"on {args.attribute!r}"
            ),
        )
    )
    return 0


def _cmd_quest_info(args) -> int:
    rows = [
        (
            a.name,
            f"{a.low:g}",
            f"{a.high:g}",
            "discrete" if a.discrete else "continuous",
        )
        for a in quest.ATTRIBUTES
    ]
    print(format_table(("attribute", "low", "high", "kind"), rows,
                       title="Quest attributes"))
    table = quest.generate(args.n, function=args.function, seed=args.seed)
    frac = float(table.labels.mean())
    print(f"\nFn{args.function}: Group A fraction on {args.n} records = {frac:.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="ppdm",
        description="Reproduction of 'Privacy-Preserving Data Mining' (SIGMOD 2000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("reconstruct", help="distribution reconstruction demo")
    p.add_argument("--shape", choices=("plateau", "triangles"), default="plateau")
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--intervals", type=int, default=20)
    _add_noise_args(p)
    p.set_defaults(func=_cmd_reconstruct)

    p = sub.add_parser("classify", help="strategy comparison on Quest functions")
    p.add_argument("--functions", type=int, nargs="+", default=[1, 2, 3, 4, 5])
    p.add_argument(
        "--strategies", nargs="+", choices=STRATEGIES,
        default=["original", "randomized", "global", "byclass"],
    )
    p.add_argument("--train", type=int, default=10_000)
    p.add_argument("--test", type=int, default=3_000)
    _add_noise_args(p)
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("sweep", help="accuracy vs privacy sweep")
    p.add_argument("--function", type=int, default=3)
    p.add_argument("--levels", type=float, nargs="+", default=[0.25, 0.5, 1.0, 2.0])
    p.add_argument(
        "--strategies", nargs="+", choices=STRATEGIES,
        default=["randomized", "byclass"],
    )
    p.add_argument("--train", type=int, default=10_000)
    p.add_argument("--test", type=int, default=3_000)
    _add_noise_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("privacy", help="noise parameters for a privacy target")
    p.add_argument("--privacy", type=float, default=1.0)
    p.add_argument("--confidence", type=float, default=0.95)
    p.set_defaults(func=_cmd_privacy)

    p = sub.add_parser("breach", help="worst-case privacy-breach analysis")
    p.add_argument("--attribute", default="age")
    p.add_argument("--levels", type=float, nargs="+", default=[0.25, 1.0])
    p.add_argument("--rho1", type=float, default=0.06)
    p.add_argument("--rho2", type=float, default=0.5)
    p.add_argument("--intervals", type=int, default=24)
    p.add_argument("--n", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_breach)

    p = sub.add_parser("quest-info", help="describe the Quest workload")
    p.add_argument("--function", type=int, default=1)
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_quest_info)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
