"""The coordinator + worker cluster tier: multi-node scale-out.

One ``ppdm serve`` process scales to the cores of one machine (striped
shards, e20); this module scales *out*: ``ppdm serve --workers N``
spawns N worker processes, each a full
:class:`~repro.service.AggregationService` ingesting independently on
its own port, and one coordinator process that serves every
``/estimate`` and ``/train`` over the union of their state.  The paper
makes this cheap: the reconstruction model is aggregate-only, so a
worker's **merged class-conditional partials** are its complete
sufficient statistic — the sync unit is O(bins), never O(records), and
because histogram counts are exact integers in float64, the
coordinator's merged union is bit-identical to a single process fed the
same records.

Sync protocol
-------------
Workers ship *cumulative* state as one version 3 partial frame
(:func:`repro.service.wire.encode_partial`), with their labeled row
buffer appended as ordinary labeled record frames when training is
enabled (:func:`export_sync_body` builds the body atomically).  The
coordinator dedicates shard slot ``i`` to worker ``i`` and applies a
sync by *replacing* that slot
(:meth:`~repro.service.AggregationService.replace_partial`), so pushes
are idempotent: a retried, duplicated, or reordered-within-a-worker
sync can never double-count.  State flows through two channels:

* **push** — each worker's :class:`PartialShipper` thread POSTs
  ``/partial?worker=i`` every ``interval`` seconds (with
  retry-and-exponential-backoff), which doubles as the worker's
  heartbeat, and flushes one final drain push at shutdown;
* **pull** — the coordinator refreshes on demand: every ``/estimate``
  best-effort pulls all registered workers
  (:meth:`ClusterCoordinator.sync`), and ``/train`` pulls strictly —
  an unreachable worker that has synced before degrades gracefully to
  its last-known state, one that has *never* synced raises
  :class:`~repro.exceptions.ClusterError` (HTTP 503).

``/healthz`` on the coordinator reports per-worker staleness: a worker
is ``stale`` once its last successful sync is older than
``stale_after`` seconds (or it was unreachable on the last attempt),
and the cluster is ``degraded`` while any worker is stale or missing.

Everything here is standard library + the existing service tier; the
worker processes are spawned (never forked) so each child imports a
fresh interpreter.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import signal
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.exceptions import (
    ClusterError,
    ReproError,
    SnapshotError,
    ValidationError,
)
from repro.service.faults import FaultPlan
from repro.service.httpd import ServiceHTTPServer
from repro.service.resilience import (
    CircuitBreaker,
    RestartBudget,
    SnapshotManager,
    recover_service,
)
from repro.service.service import AggregationService, service_from_spec
from repro.service.training import TrainedModel, TrainingService
from repro.service.wire import (
    CONTENT_TYPE_PARTIAL,
    WIRE_CODEC_IDENTITY,
    compress_payload,
    encode_columns,
    encode_partial,
    iter_labeled_frames,
    split_partial,
    supported_codecs,
)

__all__ = [
    "ClusterCoordinator",
    "ClusterSupervisor",
    "PartialShipper",
    "export_sync_body",
    "register_worker",
    "start_cluster",
]

#: default seconds before a silent worker is reported stale in /healthz
_DEFAULT_STALE_AFTER = 15.0

#: default per-request timeout for cluster-internal HTTP (seconds)
_DEFAULT_TIMEOUT = 10.0

#: exit code a worker uses when its final drain push (or snapshot) failed
_DRAIN_FAILED_EXIT = 3

logger = logging.getLogger("repro.service.cluster")


def _default_fetch(
    url: str,
    data: bytes | None = None,
    content_type: str | None = None,
    timeout: float = _DEFAULT_TIMEOUT,
    content_encoding: str | None = None,
) -> bytes:
    """One cluster-internal HTTP request; any failure is a ClusterError.

    GET when ``data`` is None, POST otherwise.  ``content_encoding``
    labels an already-compressed body (the shipper compresses before
    calling).  Transport errors and non-2xx statuses both normalize to
    :class:`~repro.exceptions.ClusterError` so callers have exactly one
    "the peer did not take this" signal to retry or degrade on.
    """
    headers = {}
    if content_type is not None:
        headers["Content-Type"] = content_type
    if content_encoding is not None:
        headers["Content-Encoding"] = content_encoding
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return bytes(response.read())
    except urllib.error.HTTPError as exc:
        try:
            detail = exc.read().decode("utf-8", "replace")[:200]
        except OSError:  # pragma: no cover - body already gone
            detail = ""
        raise ClusterError(
            f"{url} answered HTTP {exc.code}: {detail or exc.reason}"
        ) from exc
    except OSError as exc:
        raise ClusterError(f"{url} is unreachable: {exc}") from exc


def export_sync_body(service, training=None) -> bytes:
    """Encode one worker's cumulative state as a sync body.

    A version 3 partial frame of the service's merged per-class counts;
    when ``training`` is given, the labeled row buffer follows as
    labeled record frames, exported under the training sync lock so the
    aggregates/rows pair always passes the coordinator's consistency
    check.  The body is idempotent by construction — it carries totals,
    not deltas.

    Examples
    --------
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service import AggregationService, AttributeSpec
    >>> from repro.service.cluster import export_sync_body
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> service = AggregationService(
    ...     [AttributeSpec("x", Partition.uniform(0, 1, 4), noise)]
    ... )
    >>> _ = service.ingest({"x": [0.4, 0.6]})
    >>> export_sync_body(service)[:4]
    b'PPDM'
    """
    if training is not None:
        with training.sync_lock:
            partials = service.export_partial()
            blocks = training.export_rows()
    else:
        partials = service.export_partial()
        blocks = []
    names = service.attributes
    frames = [encode_partial(partials)]
    for matrix, labels in blocks:
        batch = {name: matrix[:, j] for j, name in enumerate(names)}
        frames.append(encode_columns(batch, classes=labels))
    return b"".join(frames)


class _WorkerLink:
    """Coordinator-side record of one registered worker."""

    __slots__ = ("worker", "url", "records", "last_sync", "reachable", "rows")

    def __init__(self, worker: int, url: str) -> None:
        self.worker = worker
        self.url = url
        self.records = 0
        self.last_sync: float | None = None
        self.reachable = True
        self.rows: list = []


class ClusterCoordinator:
    """Tracks worker registrations and folds their partials into a service.

    Parameters
    ----------
    service:
        The coordinator's :class:`~repro.service.AggregationService`.
        Worker ``i`` owns shard slot ``i``, so the service must be built
        with ``n_shards >= n_workers``.
    n_workers:
        Cluster width (defaults to ``service.n_shards``).
    training:
        Optional :class:`~repro.service.TrainingService` over
        ``service``; enables row sync and :meth:`train`.
    stale_after:
        Seconds of sync silence before a worker is reported stale.
    fetch:
        Injectable transport ``fetch(url, data=None, content_type=None,
        timeout=...) -> bytes`` (tests swap in an in-process fake).

    Examples
    --------
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service import AggregationService, AttributeSpec
    >>> from repro.service.cluster import ClusterCoordinator, export_sync_body
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> def build():
    ...     return AggregationService(
    ...         [AttributeSpec("x", Partition.uniform(0, 1, 4), noise)]
    ...     )
    >>> worker = build()
    >>> _ = worker.ingest({"x": [0.4, 0.6, 0.5]})
    >>> coordinator = ClusterCoordinator(build())
    >>> coordinator.register(0, "http://127.0.0.1:0")["worker"]
    0
    >>> coordinator.apply_push(0, export_sync_body(worker))
    3
    >>> coordinator.service.n_seen("x")
    3
    """

    def __init__(
        self,
        service: AggregationService,
        *,
        n_workers: int | None = None,
        training: TrainingService | None = None,
        stale_after: float = _DEFAULT_STALE_AFTER,
        timeout: float = _DEFAULT_TIMEOUT,
        fetch=None,
    ) -> None:
        self.service = service
        self.training = training
        if training is not None and training.service is not service:
            raise ValidationError(
                "the coordinator's training service must wrap its "
                "AggregationService instance"
            )
        self.n_workers = service.n_shards if n_workers is None else int(n_workers)
        if not 1 <= self.n_workers <= service.n_shards:
            raise ValidationError(
                f"n_workers must be in [1, {service.n_shards}] (one shard "
                f"slot per worker), got {self.n_workers}"
            )
        if stale_after <= 0:
            raise ValidationError(
                f"stale_after must be > 0 seconds, got {stale_after}"
            )
        self.stale_after = float(stale_after)
        self.timeout = float(timeout)
        self._fetch = _default_fetch if fetch is None else fetch
        self._links: dict = {}
        # guards the registry and every _WorkerLink field; held only for
        # in-memory bookkeeping, never across HTTP or service calls
        self._lock = threading.Lock()
        # optional supervision-status provider (set by ClusterSupervisor)
        self._supervision = None

    # ------------------------------------------------------------------
    # Registration + push (worker-initiated)
    # ------------------------------------------------------------------
    def register(self, worker, url) -> dict:
        """Register (or re-register) worker ``worker`` serving at ``url``.

        Re-registration with the same id just updates the URL — a
        restarted worker resumes its slot, and its next cumulative push
        replaces whatever its previous incarnation had synced.
        """
        if not isinstance(worker, int) or isinstance(worker, bool):
            raise ValidationError("'worker' must be an integer id")
        if not 0 <= worker < self.n_workers:
            raise ValidationError(
                f"worker id {worker} out of range [0, {self.n_workers})"
            )
        if not isinstance(url, str) or not url.startswith(("http://", "https://")):
            raise ValidationError(
                f"worker url must be an http(s) URL, got {url!r}"
            )
        url = url.rstrip("/")
        with self._lock:
            link = self._links.get(worker)
            if link is None:
                self._links[worker] = _WorkerLink(worker, url)
            else:
                link.url = url
                link.reachable = True
            registered = len(self._links)
        return {"worker": worker, "n_workers": self.n_workers,
                "registered": registered}

    def apply_push(self, worker: int, payload) -> int:
        """Absorb one sync body from worker ``worker``; return its records.

        Decodes and validates everything — the partial frame and any
        trailing labeled row frames — *before* touching state, so a
        malformed body changes nothing (the HTTP front end's 400
        contract).  A valid body replaces the worker's shard slot (and
        its buffered row segment, atomically under the training sync
        lock) and counts as a heartbeat.
        """
        partials, rest = split_partial(payload)
        blocks = []
        if len(rest):
            if self.training is None:
                raise ValidationError(
                    "sync body carries row frames but the coordinator has "
                    "no training service"
                )
            for batch, classes, _ in iter_labeled_frames(rest):
                if classes is None:
                    raise ValidationError(
                        "sync row frames must carry a class column"
                    )
                blocks.append(self.training.prepare_rows(batch, classes))
        with self._lock:
            link = self._links.get(worker)
        if link is None:
            raise ValidationError(
                f"worker {worker} is not registered; POST /register first"
            )
        if self.training is not None:
            # slot and row segment move together so a concurrent train
            # can never pair new aggregates with an old buffer
            with self.training.sync_lock:
                records = self.service.replace_partial(worker, partials)
                self._mark_synced(link, records, blocks)
        else:
            records = self.service.replace_partial(worker, partials)
            self._mark_synced(link, records, blocks)
        return records

    def _mark_synced(self, link: _WorkerLink, records: int, blocks) -> None:
        with self._lock:
            link.records = int(records)
            link.last_sync = time.monotonic()
            link.reachable = True
            link.rows = list(blocks)

    # ------------------------------------------------------------------
    # Pull (coordinator-initiated)
    # ------------------------------------------------------------------
    def sync(self, *, require_all: bool = False) -> dict:
        """Pull fresh partials from every registered worker.

        Best-effort by default (``/estimate``): an unreachable worker is
        marked so, its shard slot keeps serving the last-known state,
        and the pull moves on.  With ``require_all`` (``/train``) an
        unreachable worker that has *never* synced raises
        :class:`~repro.exceptions.ClusterError` — there is no last-known
        state to degrade to.  Returns ``{"synced": [...], "failed":
        [...]}`` worker id lists.
        """
        with self._lock:
            targets = [
                (link.worker, link.url)
                for link in sorted(self._links.values(), key=lambda s: s.worker)
            ]
        path = "/partial?rows=1" if self.training is not None else "/partial"
        synced = []
        failed = []
        for worker, url in targets:
            try:
                payload = self._fetch(url + path, timeout=self.timeout)
            except ClusterError as exc:
                with self._lock:
                    link = self._links[worker]
                    link.reachable = False
                    never_synced = link.last_sync is None
                if require_all and never_synced:
                    raise ClusterError(
                        f"worker {worker} at {url} is unreachable and has "
                        f"never synced a partial: {exc}"
                    ) from exc
                failed.append(worker)
                continue
            self.apply_push(worker, payload)
            synced.append(worker)
        return {"synced": synced, "failed": failed}

    def train(self, strategy: str = "byclass") -> TrainedModel:
        """Sync strictly, install the union row buffer, and grow a tree.

        Workers are pulled first (HTTP strictly outside any lock); the
        buffer swap and the training run then happen under the training
        sync lock, so a concurrent push cannot interleave between the
        two.  The grown tree is bit-identical to a single-process
        training service fed the same labeled rows in worker order.
        """
        if self.training is None:
            raise ValidationError(
                "the coordinator was built without a training service"
            )
        self.sync(require_all=True)
        with self.training.sync_lock:
            with self._lock:
                segments = [
                    block
                    for link in sorted(
                        self._links.values(), key=lambda s: s.worker
                    )
                    for block in link.rows
                ]
            self.training.replace_rows(segments)
            return self.training.train(strategy)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Per-worker sync state for ``/healthz`` and ``GET /cluster``.

        A worker is ``stale`` when it has never synced, was unreachable
        on the last pull/push attempt, or its last sync is older than
        ``stale_after`` seconds; the cluster is ``degraded`` while any
        worker is stale or not yet registered.
        """
        now = time.monotonic()
        workers = []
        with self._lock:
            for link in sorted(self._links.values(), key=lambda s: s.worker):
                age = None if link.last_sync is None else now - link.last_sync
                stale = (
                    age is None
                    or age > self.stale_after
                    or not link.reachable
                )
                workers.append(
                    {
                        "worker": link.worker,
                        "url": link.url,
                        "records": link.records,
                        "age_seconds": age,
                        "reachable": link.reachable,
                        "stale": stale,
                    }
                )
        degraded = len(workers) < self.n_workers or any(
            entry["stale"] for entry in workers
        )
        payload = {
            "n_workers": self.n_workers,
            "registered": len(workers),
            "stale_after": self.stale_after,
            "degraded": degraded,
            "workers": workers,
        }
        if self._supervision is not None:
            supervision = self._supervision()
            payload["supervision"] = supervision
            if supervision.get("exhausted") or not all(
                supervision.get("alive", ())
            ):
                payload["degraded"] = True
        return payload

    def attach_supervision(self, provider) -> None:
        """Attach a supervision-status callable reported by :meth:`health`.

        :class:`ClusterSupervisor` installs its own status here so
        ``/healthz`` and ``GET /cluster`` expose restart counts, live
        flags, and exhausted (permanently degraded) worker slots.
        """
        self._supervision = provider


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def register_worker(
    coordinator_url: str,
    worker: int,
    worker_url: str,
    *,
    retries: int = 20,
    backoff: float = 0.25,
    timeout: float = _DEFAULT_TIMEOUT,
    fetch=None,
    sleep=time.sleep,
    faults: FaultPlan | None = None,
) -> dict:
    """Announce a worker to the coordinator, retrying with backoff.

    Workers and coordinator start concurrently, so the first attempts
    may hit a coordinator that is not listening yet; registration keeps
    retrying (delays double up to ~8 s) until it lands or ``retries``
    are spent (then the last :class:`~repro.exceptions.ClusterError`
    propagates).  A fault plan with a ``register.request`` point can
    drop or delay individual attempts (chaos testing the retry path).
    """
    fetch = _default_fetch if fetch is None else fetch
    body = json.dumps({"worker": int(worker), "url": worker_url}).encode()
    delay = backoff
    for attempt in range(max(1, int(retries))):
        try:
            if faults is not None:
                action = faults.decide("register.request")
                if action is not None and action.kind == "drop":
                    raise ClusterError(
                        f"injected fault: registration attempt dropped "
                        f"({action.point} #{action.index})"
                    )
                if action is not None and action.kind == "delay":
                    sleep(action.value)
            raw = fetch(
                coordinator_url.rstrip("/") + "/register",
                data=body,
                content_type="application/json",
                timeout=timeout,
            )
            return json.loads(raw.decode())
        except ClusterError:
            if attempt + 1 >= max(1, int(retries)):
                raise
            sleep(delay)
            delay = min(delay * 2, 8.0)
    raise ClusterError("unreachable")  # pragma: no cover - loop always returns


class PartialShipper:
    """Background thread pushing one worker's cumulative state upstream.

    Every ``interval`` seconds (and once more at :meth:`stop` — the
    drain flush) the shipper exports the worker's merged partials
    (:func:`export_sync_body`) and POSTs them to the coordinator's
    ``/partial?worker=i``.  Each push re-exports fresh state and retries
    with exponential backoff on failure; because the body is cumulative
    and the coordinator replaces, a lost or duplicated push never skews
    the union.  Pushes double as heartbeats, so an idle worker still
    reports in.  ``codec`` compresses every push body
    (:func:`~repro.service.wire.compress_payload`) and labels it with
    ``Content-Encoding`` — partial frames are mostly small integers, so
    zlib cuts sync bandwidth severalfold at O(bins) cost.

    Examples
    --------
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service import AggregationService, AttributeSpec
    >>> from repro.service.cluster import PartialShipper
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> service = AggregationService(
    ...     [AttributeSpec("x", Partition.uniform(0, 1, 4), noise)]
    ... )
    >>> _ = service.ingest({"x": [0.4, 0.6]})
    >>> sent = []
    >>> def fake_fetch(url, data=None, content_type=None, timeout=None):
    ...     sent.append((url, data[:4]))
    ...     return b"{}"
    >>> shipper = PartialShipper(
    ...     service, "http://coordinator:9", 0, fetch=fake_fetch
    ... )
    >>> shipper.push()
    True
    >>> sent
    [('http://coordinator:9/partial?worker=0', b'PPDM')]
    """

    def __init__(
        self,
        service: AggregationService,
        coordinator_url: str,
        worker: int,
        *,
        interval: float = 5.0,
        training: TrainingService | None = None,
        retries: int = 5,
        backoff: float = 0.25,
        timeout: float = _DEFAULT_TIMEOUT,
        fetch=None,
        sleep=time.sleep,
        breaker: CircuitBreaker | None = None,
        faults: FaultPlan | None = None,
        codec: str = WIRE_CODEC_IDENTITY,
    ) -> None:
        if interval <= 0:
            raise ValidationError(
                f"sync interval must be > 0 seconds, got {interval}"
            )
        if retries < 1:
            raise ValidationError(f"retries must be >= 1, got {retries}")
        if codec not in supported_codecs():
            raise ValidationError(
                f"unsupported push codec {codec!r}; this process supports "
                f"{', '.join(supported_codecs())}"
            )
        self.codec = codec
        self.service = service
        self.training = training
        self.worker = int(worker)
        self.interval = float(interval)
        self._url = (
            coordinator_url.rstrip("/") + f"/partial?worker={self.worker}"
        )
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._timeout = float(timeout)
        self._fetch = _default_fetch if fetch is None else fetch
        self._sleep = sleep
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # closed/open/half-open gate: after breaker.failure_threshold
        # consecutive failed pushes the interval loop stops hammering the
        # coordinator and probes it once per reset timeout instead
        self.breaker = (
            CircuitBreaker(
                failure_threshold=3,
                reset_timeout=max(2.0 * float(interval), 1.0),
            )
            if breaker is None
            else breaker
        )
        self.faults = faults
        self.pushes = 0
        self.failures = 0
        self.skipped = 0

    def push(self, *, force: bool = False) -> bool:
        """Export and push once, retrying with backoff; True on success.

        Every attempt re-exports fresh cumulative state (an O(bins)
        merge), so the retry that finally lands carries everything
        absorbed during the backoff sleeps too.  While the circuit
        breaker is open the push is skipped outright (counted in
        ``skipped``) unless ``force`` is set — the drain flush always
        tries, whatever the breaker thinks.
        """
        if not force and not self.breaker.allow():
            self.skipped += 1
            return False
        delay = self._backoff
        for attempt in range(self._retries):
            body = compress_payload(
                export_sync_body(self.service, self.training), self.codec
            )
            try:
                if self.faults is not None:
                    action = self.faults.decide("shipper.push")
                    if action is not None:
                        if action.kind == "truncate":
                            # ship a cut-off frame: the coordinator must
                            # reject it wholesale (400 -> ClusterError)
                            body = body[: int(len(body) * action.value)]
                        elif action.kind == "drop":
                            raise ClusterError(
                                f"injected fault: push attempt dropped "
                                f"({action.point} #{action.index})"
                            )
                        elif action.kind == "delay":
                            self._sleep(action.value)
                # the keyword rides only on compressed pushes, so
                # injected test transports with the historical
                # (url, data, content_type, timeout) signature keep
                # working for identity shippers
                codec_kwargs = (
                    {}
                    if self.codec == WIRE_CODEC_IDENTITY
                    else {"content_encoding": self.codec}
                )
                self._fetch(
                    self._url,
                    data=body,
                    content_type=CONTENT_TYPE_PARTIAL,
                    timeout=self._timeout,
                    **codec_kwargs,
                )
            except ClusterError:
                if attempt + 1 >= self._retries:
                    self.failures += 1
                    self.breaker.record_failure()
                    return False
                self._sleep(delay)
                delay = min(delay * 2, 8.0)
                continue
            self.pushes += 1
            self.breaker.record_success()
            return True
        return False  # pragma: no cover - loop always returns

    def start(self) -> "PartialShipper":
        """Start the interval push thread (daemonic; idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name=f"partial-shipper-{self.worker}",
                daemon=True,
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.push()

    def stop(self, *, drain: bool = True) -> bool:
        """Stop the push thread; with ``drain``, flush one final push.

        The drain push is the shutdown contract: whatever the worker
        absorbed since the last interval push reaches the coordinator
        before the process exits.  Returns the drain push's success
        (True when ``drain`` is off) — callers must surface ``False``,
        it means the coordinator never saw this worker's final records.
        The drain bypasses an open circuit breaker (``force=True``).
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(self._timeout, self.interval) + 5.0)
            self._thread = None
        if drain:
            drained = self.push(force=True)
            if not drained:
                logger.warning(
                    "worker %d final drain push failed after %d "
                    "attempt(s); the coordinator is missing its last "
                    "records",
                    self.worker,
                    self._retries,
                )
            return drained
        return True


# ----------------------------------------------------------------------
# Process topology
# ----------------------------------------------------------------------
def _worker_main(config: dict) -> None:
    """Entry point of one spawned worker process.

    Builds a full service (plus training when configured) from the
    deployment spec, serves it on an ephemeral port, registers with the
    coordinator (retrying until it is up), ships partials on the sync
    interval, and on the supervisor's stop signal (SIGTERM) drains one
    final push before exiting.  With a per-worker ``snapshot_path`` the
    worker recovers its cumulative state from the newest valid
    generation at startup (so a supervised restart resumes the slot
    instead of replacing it with empty counts), auto-snapshots every
    ``snapshot_interval`` seconds, and persists once more at exit.  A
    failed final drain (or final snapshot) exits with code
    ``_DRAIN_FAILED_EXIT`` so the supervisor can report the loss.

    The stop signal is deliberately an OS signal and a *process-local*
    event, never shared IPC state: a ``multiprocessing.Event`` waiter
    that dies under SIGKILL leaves the event's internal condition
    counting a sleeper that will never wake, deadlocking the next
    ``set()`` — exactly the crash the supervisor must survive.
    """
    stop = threading.Event()
    # installed before any blocking work so an early terminate() still
    # lands on the graceful path; Ctrl-C belongs to the supervisor
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    faults = FaultPlan.from_spec(config.get("faults"))
    if faults is None:
        faults = FaultPlan.from_env()
    snapshot_path = config.get("snapshot_path")
    service = None
    if snapshot_path is not None:
        try:
            service, recovered_from = recover_service(snapshot_path)
            logger.warning(
                "worker %d recovered %d record(s) from %s",
                config["worker"],
                sum(service.n_seen().values()),
                recovered_from,
            )
        except SnapshotError:
            service = None  # first boot: nothing persisted yet
    if service is None:
        service = service_from_spec(config["spec"])
    training = TrainingService(service) if config.get("train") else None
    server = ServiceHTTPServer(
        service, config.get("host", "127.0.0.1"), 0, training=training,
        snapshot_path=snapshot_path, faults=faults,
        max_inflight=config.get("max_inflight"),
    )
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    shipper = PartialShipper(
        service,
        config["coordinator_url"],
        config["worker"],
        interval=config.get("sync_interval", 5.0),
        training=training,
        faults=faults,
        codec=config.get("codec") or WIRE_CODEC_IDENTITY,
    )
    manager = None
    if snapshot_path is not None and config.get("snapshot_interval"):
        manager = SnapshotManager(
            server.persist, float(config["snapshot_interval"])
        ).start()
    drained = True
    persisted = True
    try:
        register_worker(
            config["coordinator_url"], config["worker"], server.url,
            faults=faults,
        )
        shipper.start()
        stop.wait()
    finally:
        server.begin_drain()
        drained = shipper.stop(drain=True)
        if manager is not None:
            persisted = manager.stop(final=True)
        elif snapshot_path is not None:
            try:
                server.persist()
            except (ReproError, OSError) as exc:
                logger.warning(
                    "worker %d exit-time snapshot failed: %s",
                    config["worker"], exc,
                )
                persisted = False
        server.shutdown()
    if not drained or not persisted:
        # reached only on a clean stop signal: surface the lost drain as
        # a nonzero exit code the supervisor turns into a non-OK result
        raise SystemExit(_DRAIN_FAILED_EXIT)


class ClusterSupervisor:
    """Owns a running cluster: coordinator server + worker processes.

    Built by :func:`start_cluster`.  The coordinator's HTTP loop runs in
    a background thread (so registrations land while the caller is still
    setting up); :meth:`wait` blocks the calling thread until
    interrupted, and :meth:`shutdown` stops the cluster in drain order —
    workers first (each flushes a final partial to the still-serving
    coordinator), coordinator last — and returns a result dict whose
    ``ok`` flag is False when any worker lost its final drain.

    Given a spawn ``context`` and per-worker ``configs``, the supervisor
    also *monitors*: a thread polls worker liveness, respawns dead
    processes under each worker's :class:`RestartBudget` (exponential
    backoff, sliding-window cap), and reports restart counts plus
    exhausted (permanently degraded) slots through the coordinator's
    health payload.  A fault plan with a ``supervisor.kill`` point lets
    a chaos run SIGKILL live workers deterministically.
    """

    def __init__(
        self,
        server: ServiceHTTPServer,
        coordinator: ClusterCoordinator,
        processes,
        *,
        context=None,
        configs=None,
        budgets=None,
        faults: FaultPlan | None = None,
        poll_interval: float = 0.2,
        snapshot_manager: SnapshotManager | None = None,
    ) -> None:
        self.server = server
        self.coordinator = coordinator
        self.processes = list(processes)
        self._snapshot_manager = snapshot_manager
        self._done = threading.Event()
        self._context = context
        self._configs = list(configs) if configs is not None else None
        self._faults = faults
        self._poll_interval = float(poll_interval)
        # guards self.processes / restart bookkeeping: the monitor thread
        # swaps restarted Process objects in while other threads iterate
        self._plock = threading.Lock()
        self.restarts = [0] * len(self.processes)
        self._exhausted = [False] * len(self.processes)
        if budgets is None:
            budgets = [RestartBudget() for _ in self.processes]
        self._budgets = list(budgets)
        self._shutdown_result: dict | None = None
        self._monitor_stop = threading.Event()
        self._monitor: threading.Thread | None = None
        coordinator.attach_supervision(self.supervision)
        self._serve_thread = threading.Thread(
            target=self.server.serve_forever, name="cluster-coordinator",
            daemon=True,
        )
        self._serve_thread.start()
        if self._context is not None and self._configs is not None:
            self._monitor = threading.Thread(
                target=self._watch, name="cluster-supervisor", daemon=True,
            )
            self._monitor.start()

    @property
    def url(self) -> str:
        """The coordinator's base URL."""
        return self.server.url

    def worker_urls(self) -> list:
        """Registered worker base URLs, in worker order."""
        return [
            entry["url"] for entry in self.coordinator.health()["workers"]
        ]

    def supervision(self) -> dict:
        """Live supervision status (surfaced by the coordinator's health)."""
        with self._plock:
            return {
                "supervised": self._monitor is not None,
                "alive": [p.is_alive() for p in self.processes],
                "restarts": list(self.restarts),
                "exhausted": [
                    i for i, flag in enumerate(self._exhausted) if flag
                ],
            }

    # ------------------------------------------------------------------
    # Monitoring / restart
    # ------------------------------------------------------------------
    def _spawn(self, index: int):
        process = self._context.Process(
            target=_worker_main, args=(self._configs[index],),
            name=f"ppdm-worker-{index}", daemon=True,
        )
        process.start()
        return process

    def _watch(self) -> None:
        while not self._monitor_stop.wait(self._poll_interval):
            with self._plock:
                snapshot = list(enumerate(self.processes))
            for index, process in snapshot:
                if self._monitor_stop.is_set():
                    return
                if self._faults is not None and process.is_alive():
                    action = self._faults.decide(
                        "supervisor.kill", qualifier=str(index)
                    )
                    if action is not None and action.kind == "kill":
                        logger.warning(
                            "injected fault: SIGKILL worker %d (pid %s, "
                            "%s #%d)",
                            index, process.pid, action.point, action.index,
                        )
                        os.kill(process.pid, signal.SIGKILL)
                        process.join(10.0)
                if process.is_alive() or self._exhausted[index]:
                    continue
                delay = self._budgets[index].spend()
                if delay is None:
                    with self._plock:
                        self._exhausted[index] = True
                    logger.warning(
                        "worker %d died (exit code %s) with its restart "
                        "budget exhausted; the slot stays degraded",
                        index, process.exitcode,
                    )
                    continue
                logger.warning(
                    "worker %d died (exit code %s); restarting in %.2fs",
                    index, process.exitcode, delay,
                )
                if self._monitor_stop.wait(delay):
                    return
                replacement = self._spawn(index)
                with self._plock:
                    self.processes[index] = replacement
                    self.restarts[index] += 1

    def wait_ready(self, timeout: float = 30.0) -> "ClusterSupervisor":
        """Block until every worker has registered (and raise past ``timeout``)."""
        deadline = time.monotonic() + timeout
        while True:
            health = self.coordinator.health()
            if health["registered"] >= self.coordinator.n_workers:
                return self
            with self._plock:
                snapshot = list(enumerate(self.processes))
            for index, process in snapshot:
                dead = not process.is_alive()
                # under supervision a dead worker may be mid-restart;
                # only an exhausted slot is hopeless
                if dead and (self._monitor is None or self._exhausted[index]):
                    raise ClusterError(
                        f"worker process pid={process.pid} exited with "
                        f"code {process.exitcode} before registering"
                    )
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"only {health['registered']} of "
                    f"{self.coordinator.n_workers} workers registered "
                    f"within {timeout:.0f}s"
                )
            time.sleep(0.05)

    def wait(self) -> None:
        """Block until :meth:`shutdown` (or KeyboardInterrupt) unblocks us."""
        self._done.wait()

    def shutdown(self, timeout: float = 30.0) -> dict:
        """Drain and stop: workers flush final partials, then the server.

        Returns ``{"ok": bool, "failures": [...], "restarts": [...],
        "exhausted": [...]}``.  ``ok`` is False — and a warning is
        logged — when any worker was terminated without exiting, exited
        nonzero (a failed final drain exits ``_DRAIN_FAILED_EXIT``), or
        had exhausted its restart budget; callers such as ``ppdm serve
        --workers`` exit nonzero on it instead of losing the outcome
        silently.  Idempotent: repeated calls return the first result.
        """
        if self._shutdown_result is not None:
            return self._shutdown_result
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
        failures = []
        with self._plock:
            processes = list(self.processes)
            exhausted = [
                i for i, flag in enumerate(self._exhausted) if flag
            ]
        # the stop signal is SIGTERM per live process, never a shared
        # multiprocessing.Event: a SIGKILLed waiter leaves such an event
        # with a sleeper that never wakes, deadlocking set() (and with
        # it every future shutdown)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for index, process in enumerate(processes):
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(5.0)
                failures.append({
                    "worker": index,
                    "reason": "did not exit in time; terminated",
                })
            elif index in exhausted:
                failures.append({
                    "worker": index,
                    "reason": "restart budget exhausted; slot was down",
                })
            elif process.exitcode != 0:
                reason = (
                    "final drain failed"
                    if process.exitcode == _DRAIN_FAILED_EXIT
                    else f"exit code {process.exitcode}"
                )
                failures.append({"worker": index, "reason": reason})
        if self._snapshot_manager is not None:
            # after the drain pushes landed, so the final coordinator
            # snapshot holds every worker's last cumulative state
            if not self._snapshot_manager.stop(final=True):
                failures.append({
                    "worker": "coordinator",
                    "reason": "final coordinator snapshot failed",
                })
        self.server.shutdown()
        self._serve_thread.join(timeout)
        self._done.set()
        result = {
            "ok": not failures,
            "failures": failures,
            "restarts": list(self.restarts),
            "exhausted": exhausted,
        }
        if failures:
            logger.warning(
                "cluster shutdown was not clean: %s",
                "; ".join(
                    f"worker {f['worker']}: {f['reason']}" for f in failures
                ),
            )
        self._shutdown_result = result
        return result


def start_cluster(
    spec: dict,
    *,
    n_workers: int,
    host: str = "127.0.0.1",
    port: int = 0,
    train: bool = False,
    sync_interval: float = 5.0,
    stale_after: float | None = None,
    snapshot_path=None,
    snapshot_dir=None,
    snapshot_interval: float | None = None,
    faults=None,
    restart_limit: int = 5,
    restart_window: float = 60.0,
    restart_backoff: float = 0.1,
    max_inflight: int | None = None,
    codec: str = WIRE_CODEC_IDENTITY,
) -> ClusterSupervisor:
    """Launch a coordinator + ``n_workers`` worker-process cluster.

    The coordinator's service is built from the same deployment ``spec``
    as the workers but with one shard slot per worker (worker ``i``
    syncs into slot ``i``); each worker process is *spawned* — a fresh
    interpreter, no inherited locks — binds an ephemeral port, and
    registers itself.  ``stale_after`` defaults to three sync intervals.
    Returns a :class:`ClusterSupervisor`; call
    :meth:`~ClusterSupervisor.wait_ready` to block until every worker is
    registered and :meth:`~ClusterSupervisor.shutdown` to drain and stop.

    Resilience knobs: ``snapshot_dir`` gives every worker a private
    snapshot file (``worker-<i>.json``) it recovers from after a
    supervised restart and persists at exit; ``snapshot_interval``
    auto-snapshots workers (and, when ``snapshot_path`` is set, the
    coordinator) on that period; ``faults`` is a
    :class:`~repro.service.faults.FaultPlan` (or spec dict) shipped to
    every process; ``restart_limit``/``restart_window``/
    ``restart_backoff`` parameterize each worker's
    :class:`~repro.service.resilience.RestartBudget`; ``max_inflight``
    bounds each worker's concurrent ingest bodies (429 + Retry-After
    past it); ``codec`` compresses every worker's partial pushes
    (``Content-Encoding``-labelled, decoded bounded on the
    coordinator).  ``snapshot_dir`` is incompatible with ``train=True`` —
    the labeled row buffer is not part of the aggregation snapshot, so
    a restored worker would ship aggregates without their rows.
    """
    if n_workers < 1:
        raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
    if not isinstance(spec, dict):
        raise ValidationError("the deployment spec must be a dict")
    if snapshot_dir is not None and train:
        raise ValidationError(
            "snapshot_dir cannot be combined with train=True: the "
            "training row buffer is not part of the aggregation "
            "snapshot, so a recovered worker would sync aggregates "
            "without their labeled rows"
        )
    if snapshot_interval is not None and (
        snapshot_dir is None and snapshot_path is None
    ):
        raise ValidationError(
            "snapshot_interval needs snapshot_dir (worker snapshots) "
            "or snapshot_path (coordinator snapshot) to write to"
        )
    if codec not in supported_codecs():
        raise ValidationError(
            f"unsupported push codec {codec!r}; this process supports "
            f"{', '.join(supported_codecs())}"
        )
    plan = faults if isinstance(faults, FaultPlan) else FaultPlan.from_spec(faults)
    fault_spec = plan.to_spec() if plan is not None else None
    coordinator_spec = dict(spec)
    coordinator_spec["shards"] = int(n_workers)
    service = service_from_spec(coordinator_spec)
    training = TrainingService(service) if train else None
    coordinator = ClusterCoordinator(
        service,
        n_workers=n_workers,
        training=training,
        stale_after=(
            3.0 * sync_interval if stale_after is None else stale_after
        ),
    )
    server = ServiceHTTPServer(
        service, host, port, cluster=coordinator, training=training,
        snapshot_path=snapshot_path, faults=plan,
    )
    context = multiprocessing.get_context("spawn")
    processes = []
    configs = []
    for worker in range(n_workers):
        worker_snapshot = None
        if snapshot_dir is not None:
            worker_snapshot = str(Path(snapshot_dir) / f"worker-{worker}.json")
        config = {
            "spec": dict(spec),
            "worker": worker,
            "coordinator_url": server.url,
            "host": host,
            "train": bool(train),
            "sync_interval": float(sync_interval),
            "snapshot_path": worker_snapshot,
            "snapshot_interval": (
                float(snapshot_interval) if snapshot_interval else None
            ),
            "faults": fault_spec,
            "max_inflight": max_inflight,
            "codec": codec,
        }
        configs.append(config)
        process = context.Process(
            target=_worker_main, args=(config,),
            name=f"ppdm-worker-{worker}", daemon=True,
        )
        process.start()
        processes.append(process)
    budgets = [
        RestartBudget(
            max_restarts=restart_limit,
            window=restart_window,
            backoff=restart_backoff,
        )
        for _ in range(n_workers)
    ]
    manager = None
    if snapshot_path is not None and snapshot_interval:
        manager = SnapshotManager(
            server.persist, float(snapshot_interval)
        ).start()
    return ClusterSupervisor(
        server, coordinator, processes,
        context=context, configs=configs, budgets=budgets, faults=plan,
        snapshot_manager=manager,
    )
