"""Reconstruction demo: regenerate the paper's §3 figure as terminal art.

Samples the "plateau" and "triangles" shapes, randomizes them, and draws
the original / randomized / reconstructed histograms side by side so the
paper's visual argument — reconstruction restores the shape randomization
destroyed — is visible without matplotlib.  Run:

    python examples/reconstruction_demo.py
"""

import numpy as np

from repro import BayesReconstructor, HistogramDistribution
from repro.core.privacy import noise_for_privacy
from repro.datasets import shapes

N_SAMPLES = 20_000
N_INTERVALS = 24
PRIVACY = 0.5  # 50% of the domain at 95% confidence
BAR_WIDTH = 30


def draw(label: str, probs: np.ndarray, midpoints: np.ndarray) -> None:
    peak = probs.max()
    print(f"  {label}")
    for mid, p in zip(midpoints, probs):
        bar = "#" * int(round(BAR_WIDTH * p / peak)) if peak > 0 else ""
        print(f"    {mid:5.2f} |{bar:<{BAR_WIDTH}}| {p:.3f}")
    print()


for shape_name, factory in shapes.SHAPES.items():
    density = factory()
    partition = density.partition(N_INTERVALS)
    x = density.sample(N_SAMPLES, seed=42)
    noise = noise_for_privacy("uniform", PRIVACY, density.high - density.low)
    w = noise.randomize(x, seed=43)

    original = HistogramDistribution.from_values(x, partition)
    randomized = HistogramDistribution.from_values(w, partition)
    result = BayesReconstructor().reconstruct(w, partition, noise)
    reconstructed = result.distribution

    print(f"=== {shape_name} (uniform noise, {PRIVACY:.0%} privacy, "
          f"{result.n_iterations} sweeps) ===\n")
    draw("original sample", original.probs, partition.midpoints)
    draw("after randomization", randomized.probs, partition.midpoints)
    draw("reconstructed", reconstructed.probs, partition.midpoints)
    print(
        f"  L1(original, randomized)    = {original.l1_distance(randomized):.4f}\n"
        f"  L1(original, reconstructed) = {original.l1_distance(reconstructed):.4f}\n"
    )
