"""E1 — Reconstruction figure: plateau shape, uniform noise (paper §3).

Regenerates the paper's "reconstructing the original distribution" figure
for the flat-topped shape: the per-interval series (original / randomized
/ reconstructed) and the summary distances.  Paper shape: the
reconstructed series tracks the original closely while the randomized
series is badly smeared.
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.experiments import ReconstructionConfig, format_table, run_reconstruction


@experiment(
    "e1",
    title="Reconstruction figure: plateau shape, uniform noise",
    tags=("reconstruction", "smoke"),
    seed=101,
)
def run_e1(ctx):
    config = ReconstructionConfig(
        shape="plateau",
        noise="uniform",
        privacy=0.5,
        n=ctx.scaled(10_000),
        n_intervals=20,
        seed=ctx.seed,
    )
    ctx.record(
        shape=config.shape,
        noise=config.noise,
        privacy=config.privacy,
        n=config.n,
        n_intervals=config.n_intervals,
    )
    outcome = run_reconstruction(config)

    table = format_table(
        ("midpoint", "true", "original", "randomized", "reconstructed"),
        outcome.rows(),
        title="E1: plateau, uniform noise, 50% privacy",
    )
    summary = (
        f"\nL1(original, randomized)    = {outcome.l1_randomized:.4f}"
        f"\nL1(original, reconstructed) = {outcome.l1_reconstructed:.4f}"
        f"\nKS(original, randomized)    = {outcome.ks_randomized:.4f}"
        f"\nKS(original, reconstructed) = {outcome.ks_reconstructed:.4f}"
        f"\niterations = {outcome.n_iterations}"
    )
    ctx.report(table + summary, name="e1_reconstruction_plateau")

    metrics = {
        "l1_randomized": float(outcome.l1_randomized),
        "l1_reconstructed": float(outcome.l1_reconstructed),
        "ks_randomized": float(outcome.ks_randomized),
        "ks_reconstructed": float(outcome.ks_reconstructed),
        "iterations": int(outcome.n_iterations),
    }
    # Paper shape: reconstruction repairs most of the smearing.
    assert metrics["l1_reconstructed"] < 0.5 * metrics["l1_randomized"]
    assert metrics["ks_reconstructed"] < metrics["ks_randomized"]
    return metrics


def test_e1_reconstruction_plateau_uniform(benchmark):
    run_experiment(benchmark, "e1")
