"""Crash-safe durability, supervision budgets, and admission control.

Aggregate state is the product of a PPDM deployment: the accumulated
noise-expanded counts cannot be re-derived once lost, so durability and
graceful degradation are correctness concerns, not ops niceties.  This
module holds the serving stack's resilience primitives:

* **Durability** — :func:`persist_with_rotation` writes snapshots
  atomically (temp file + fsync + rename, integrity digest embedded by
  :mod:`repro.serialize`) while keeping the previous generation as
  ``<name>.1``; :func:`recover_service` walks the generations newest
  first at startup, rejecting corrupt snapshots loudly and settling on
  the newest one that verifies.  :class:`SnapshotManager` runs the
  periodic auto-snapshot behind ``--snapshot-interval``.
* **Overload** — :class:`AdmissionController` bounds in-flight ingest
  work (the HTTP front end turns a rejected acquire into ``429`` +
  ``Retry-After``); :class:`CircuitBreaker` gives
  :class:`~repro.service.cluster.PartialShipper` the classic
  closed/open/half-open discipline so a dead coordinator is probed, not
  hammered.
* **Supervision** — :class:`RestartBudget` is the sliding-window
  restart allowance with exponential backoff that
  :class:`~repro.service.cluster.ClusterSupervisor` spends when it
  respawns a dead worker.

Examples
--------
>>> from repro.service.resilience import CircuitBreaker
>>> clock = iter([0.0, 2.0, 7.0]).__next__
>>> breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0,
...                          clock=clock)
>>> breaker.record_failure(); breaker.record_failure(); breaker.state
'open'
>>> breaker.allow()   # t=2.0: still cooling off
False
>>> breaker.allow()   # t=7.0: past the reset timeout -> one probe
True
>>> breaker.record_success(); breaker.state
'closed'
"""

from __future__ import annotations

import logging
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.exceptions import ReproError, SnapshotError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import AggregationService

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "RestartBudget",
    "SnapshotManager",
    "persist_with_rotation",
    "previous_snapshot_path",
    "recover_service",
]

logger = logging.getLogger("repro.service.resilience")

#: circuit breaker states
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Closed/open/half-open gate in front of an unreliable peer.

    Closed passes everything through.  ``failure_threshold``
    consecutive failures open the circuit: :meth:`allow` refuses for
    ``reset_timeout`` seconds, then admits exactly one probe
    (half-open).  A successful probe closes the circuit; a failed one
    re-opens it for another full timeout.  Thread-safe.

    Examples
    --------
    >>> from repro.service.resilience import CircuitBreaker
    >>> breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
    >>> breaker.state, breaker.allow()
    ('closed', True)
    >>> breaker.record_failure(); breaker.state, breaker.allow()
    ('open', False)
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValidationError("reset_timeout must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call go through right now?"""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self._state = HALF_OPEN
                    self._probing = True
                    return True
                return False
            # half-open: exactly one probe is in flight at a time
            if not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or self._failures >= self.failure_threshold:
                if self._state != OPEN:
                    logger.warning(
                        "circuit breaker opened after %d failure(s); "
                        "probing again in %.1fs",
                        self._failures,
                        self.reset_timeout,
                    )
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False

    def stats(self) -> dict:
        with self._lock:
            return {"state": self._state, "failures": self._failures}


class AdmissionController:
    """Bounded in-flight gauge guarding the ingest path.

    ``try_acquire`` admits up to ``max_inflight`` concurrent units of
    work; beyond that it refuses and the caller should shed load (the
    HTTP front end replies ``429`` with ``Retry-After: retry_after``).
    Thread-safe.

    >>> gauge = AdmissionController(max_inflight=1, retry_after=2.0)
    >>> gauge.try_acquire(), gauge.try_acquire()
    (True, False)
    >>> gauge.release(); gauge.try_acquire()
    True
    """

    def __init__(self, max_inflight: int, retry_after: float = 1.0) -> None:
        if max_inflight < 1:
            raise ValidationError("max_inflight must be >= 1")
        if retry_after < 0:
            raise ValidationError("retry_after must be >= 0")
        self.max_inflight = int(max_inflight)
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._inflight = 0
        self._admitted = 0
        self._rejected = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def try_acquire(self) -> bool:
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._rejected += 1
                return False
            self._inflight += 1
            self._admitted += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._inflight <= 0:
                raise ValidationError("release() without a matching acquire")
            self._inflight -= 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "admitted": self._admitted,
                "rejected": self._rejected,
            }


class RestartBudget:
    """Sliding-window restart allowance with exponential backoff.

    A supervisor may spend one restart per call to :meth:`spend`; the
    call returns the backoff delay to wait before the respawn, or
    ``None`` when ``max_restarts`` have already been spent inside the
    trailing ``window`` seconds (the slot then stays down — restarting
    a crash-looping worker forever just hides the crash).

    >>> budget = RestartBudget(max_restarts=2, window=60.0, backoff=0.5,
    ...                        clock=lambda: 10.0)
    >>> budget.spend(), budget.spend(), budget.spend()
    (0.5, 1.0, None)
    """

    def __init__(
        self,
        max_restarts: int = 5,
        window: float = 60.0,
        backoff: float = 0.25,
        max_backoff: float = 8.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_restarts < 0:
            raise ValidationError("max_restarts must be >= 0")
        if window <= 0:
            raise ValidationError("window must be > 0")
        self.max_restarts = int(max_restarts)
        self.window = float(window)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self._clock = clock
        self._lock = threading.Lock()
        self._spent: List[float] = []

    def spend(self) -> Optional[float]:
        """Spend one restart; return its backoff delay or ``None``."""
        with self._lock:
            now = self._clock()
            self._spent = [t for t in self._spent if now - t < self.window]
            if len(self._spent) >= self.max_restarts:
                return None
            delay = min(
                self.backoff * (2.0 ** len(self._spent)), self.max_backoff
            )
            self._spent.append(now)
            return delay

    @property
    def spent(self) -> int:
        """Restarts spent inside the current window."""
        with self._lock:
            now = self._clock()
            return sum(1 for t in self._spent if now - t < self.window)


# ----------------------------------------------------------------------
# durability


def previous_snapshot_path(path) -> Path:
    """The previous-generation sibling of a snapshot path (``name.1``)."""
    path = Path(path)
    return path.with_name(path.name + ".1")


def persist_with_rotation(service: "AggregationService", path) -> Path:
    """Atomically snapshot ``service`` to ``path``, keeping one generation.

    The current snapshot (when one exists) is first rotated to
    ``<name>.1``; the new document then lands via the fsynced
    temp-file-plus-rename in :func:`repro.serialize.save`.  If the
    write fails, the rotation is undone so the previous good snapshot
    survives under its original name, and the failure surfaces as
    :class:`~repro.exceptions.SnapshotError`.  A missing parent
    directory is created rather than failing every auto-snapshot of a
    freshly configured ``--snapshot-dir``.
    """
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise SnapshotError(
            f"snapshot write to {str(path)!r} failed: {exc}"
        ) from exc
    previous = previous_snapshot_path(path)
    rotated = False
    if path.exists():
        os.replace(path, previous)
        rotated = True
    try:
        service.save(path)
    except OSError as exc:
        if rotated:  # put the good generation back where recovery finds it
            os.replace(previous, path)
        raise SnapshotError(
            f"snapshot write to {str(path)!r} failed: {exc}"
        ) from exc
    return path


def recover_service(path) -> Tuple["AggregationService", Path]:
    """Load the newest valid snapshot generation of ``path``.

    Tries ``path`` then ``<name>.1``; a generation that is missing is
    skipped, one that is corrupt (bad JSON, failed integrity digest,
    inconsistent counts) is rejected with a logged warning.  Returns
    ``(service, path_used)`` or raises
    :class:`~repro.exceptions.SnapshotError` when no generation loads.
    """
    from repro.service.service import AggregationService

    path = Path(path)
    rejected: List[str] = []
    for candidate in (path, previous_snapshot_path(path)):
        if not candidate.is_file():
            continue
        try:
            service = AggregationService.load(candidate)
        except (ValidationError, ReproError, OSError) as exc:
            logger.warning(
                "rejecting corrupt snapshot %s: %s", candidate, exc
            )
            rejected.append(f"{candidate}: {exc}")
            continue
        if rejected:
            logger.warning(
                "recovered from older generation %s after rejecting %d "
                "corrupt snapshot(s)",
                candidate,
                len(rejected),
            )
        return service, candidate
    detail = "; ".join(rejected) if rejected else "no snapshot file exists"
    raise SnapshotError(
        f"no valid snapshot generation for {str(path)!r}: {detail}"
    )


class SnapshotManager:
    """Background auto-snapshot loop (the ``--snapshot-interval`` engine).

    Calls ``persist`` every ``interval`` seconds on a daemon thread; a
    persist that fails is logged and counted, never fatal (the next
    tick retries).  :meth:`stop` joins the thread and, by default,
    takes one final snapshot so shutdown loses nothing.
    """

    def __init__(self, persist: Callable[[], object], interval: float) -> None:
        if interval <= 0:
            raise ValidationError("snapshot interval must be > 0 seconds")
        self._persist = persist
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.snapshots = 0
        self.failures = 0

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._tick()

    def _tick(self) -> bool:
        try:
            self._persist()
        except (ReproError, OSError) as exc:
            with self._lock:
                self.failures += 1
            logger.warning("auto-snapshot failed (will retry): %s", exc)
            return False
        with self._lock:
            self.snapshots += 1
        return True

    def start(self) -> "SnapshotManager":
        if self._thread is not None:
            raise ValidationError("snapshot manager already started")
        self._thread = threading.Thread(
            target=self._run, name="ppdm-snapshot", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final: bool = True) -> bool:
        """Stop the loop; with ``final``, persist once more.

        Returns ``True`` when the final persist succeeded (or was not
        requested) — callers surface a ``False`` as a failed drain.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        return self._tick() if final else True

    def stats(self) -> dict:
        with self._lock:
            return {
                "interval": self.interval,
                "snapshots": self.snapshots,
                "failures": self.failures,
            }
