"""EM distribution reconstruction (Agrawal & Aggarwal, PODS 2001).

The direct successor of the SIGMOD 2000 paper observed that the binned
Bayes iterate *is* the EM algorithm for the interval-mixture likelihood

    L(theta) = sum_s  n_s * log( (M theta)_s )

and proved it converges to the maximum-likelihood estimate.  This module
implements that EM view explicitly: the same multiplicative update as
:class:`~repro.core.reconstruction.BayesReconstructor`, but driven by the
log-likelihood (monotonically non-decreasing — asserted in the tests) with
a likelihood-improvement stopping rule.  It exists as the reconstruction
ablation (experiment E10): the two reconstructors must agree.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.randomizers import AdditiveRandomizer
from repro.core.reconstruction import _EPS, ReconstructionResult, _chi2_fit, _prepare
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.utils.validation import check_positive


class EMReconstructor:
    """Maximum-likelihood reconstruction via EM.

    Parameters
    ----------
    max_iterations:
        Hard cap on EM steps.
    tol:
        Stop when the per-sample log-likelihood improves by less than this
        amount between successive steps.
    coverage:
        Noise mass the expanded bucketing grid must cover (matters for
        Gaussian noise only).

    Notes
    -----
    The noise kernel always uses the ``"integrated"`` transition (interval
    probabilities, not midpoint densities): EM's monotonicity guarantee is
    stated for a proper likelihood, which requires genuine probabilities.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import EMReconstructor, Partition, UniformRandomizer
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(0.4, 0.6, 4000)          # private values
    >>> noise = UniformRandomizer(half_width=0.3)
    >>> result = EMReconstructor().reconstruct(
    ...     noise.randomize(x, seed=1), Partition.uniform(0, 1, 5), noise
    ... )
    >>> int(np.argmax(result.distribution.probs))  # mass back in the middle
    2
    """

    def __init__(
        self,
        *,
        max_iterations: int = 1000,
        tol: float = 1e-9,
        coverage: float = 1.0 - 1e-9,
    ) -> None:
        if max_iterations < 1:
            raise ValidationError(f"max_iterations must be >= 1, got {max_iterations}")
        check_positive(tol, "tol")
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)
        self.coverage = coverage

    def reconstruct(
        self,
        randomized_values,
        x_partition: Partition,
        randomizer: AdditiveRandomizer,
    ) -> ReconstructionResult:
        """Estimate the original distribution by likelihood ascent.

        Same contract as
        :meth:`repro.core.reconstruction.BayesReconstructor.reconstruct`.
        """
        y_counts, kernel = _prepare(
            randomized_values,
            x_partition,
            randomizer,
            transition_method="integrated",
            coverage=self.coverage,
        )
        n = y_counts.sum()
        theta = np.full(x_partition.n_intervals, 1.0 / x_partition.n_intervals)

        def log_likelihood(t: np.ndarray) -> float:
            mixture = np.maximum(kernel @ t, _EPS)
            return float((y_counts * np.log(mixture)).sum() / n)

        previous_ll = log_likelihood(theta)
        deltas: list[float] = []
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            mixture = np.maximum(kernel @ theta, _EPS)
            weights = y_counts / n / mixture
            theta_new = theta * (kernel.T @ weights)
            total = theta_new.sum()
            if total <= 0:
                raise ValidationError(
                    "EM collapsed to zero mass; noise kernel does not cover "
                    "the observed randomized values"
                )
            theta_new /= total

            current_ll = log_likelihood(theta_new)
            deltas.append(float(np.abs(theta_new - theta).sum()))
            theta = theta_new
            if current_ll - previous_ll < self.tol:
                converged = True
                break
            previous_ll = current_ll

        if not converged:
            warnings.warn(
                f"EM stopped at max_iterations={self.max_iterations}",
                ConvergenceWarning,
                stacklevel=2,
            )
        chi2_stat, chi2_thresh = _chi2_fit(y_counts, kernel @ theta * n)
        return ReconstructionResult(
            distribution=HistogramDistribution(x_partition, theta),
            n_iterations=iteration,
            converged=converged,
            chi2_statistic=chi2_stat,
            chi2_threshold=chi2_thresh,
            delta_history=tuple(deltas),
        )
