"""Privacy quantification (paper §2.1, plus the information-theoretic sequel).

The paper measures privacy by **confidence intervals**: if, after seeing
the disclosed value, the private value can be pinned to an interval of
width ``W`` with ``c`` % confidence, then ``W`` — expressed as a percentage
of the attribute's domain range — is the privacy at confidence ``c``.
"100 % privacy at 95 % confidence" therefore means the 95 % interval is as
wide as the whole domain.

The follow-on work (Agrawal & Aggarwal, PODS 2001) pointed out that this
metric ignores what the *distribution* of X reveals, and proposed an
information-theoretic a-posteriori metric based on mutual information;
:func:`posterior_privacy` implements its discretized form and powers the
"reconstruction leaks information" ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import HistogramDistribution
from repro.core.randomizers import (
    AdditiveRandomizer,
    GaussianRandomizer,
    UniformRandomizer,
    transition_matrix,
)
from repro.exceptions import ValidationError
from repro.utils.validation import check_fraction, check_positive

#: randomizer factories addressable by name in configs and the CLI
NOISE_KINDS = ("uniform", "gaussian")


def noise_for_privacy(
    kind: str, privacy: float, domain_span: float, confidence: float = 0.95
) -> AdditiveRandomizer:
    """Build the additive randomizer achieving a target privacy level.

    Parameters
    ----------
    kind:
        ``"uniform"`` or ``"gaussian"``.
    privacy:
        Target privacy as a fraction of ``domain_span`` (paper convention:
        ``1.0`` = "100 % privacy").
    domain_span:
        Width of the attribute's domain.
    confidence:
        Confidence level at which the privacy is stated (paper uses 0.95).

    Examples
    --------
    >>> from repro.core import noise_for_privacy
    >>> noise = noise_for_privacy("uniform", 1.0, 100.0)
    >>> round(float(noise.half_width), 4)
    52.6316
    """
    if kind == "uniform":
        return UniformRandomizer.from_privacy(privacy, domain_span, confidence)
    if kind == "gaussian":
        return GaussianRandomizer.from_privacy(privacy, domain_span, confidence)
    raise ValidationError(f"unknown noise kind {kind!r}; expected one of {NOISE_KINDS}")


def privacy_of_randomizer(
    randomizer, domain_span: float, confidence: float = 0.95
) -> float:
    """Privacy of a randomizer as a fraction of the domain span.

    Inverse of :func:`noise_for_privacy`: returns ``W(confidence) /
    domain_span`` where ``W`` is the randomizer's confidence-interval
    width.  Works for any randomizer exposing ``privacy_interval_width``.

    Examples
    --------
    >>> from repro.core import UniformRandomizer, privacy_of_randomizer
    >>> privacy_of_randomizer(UniformRandomizer(half_width=50.0), 100.0)
    0.95
    """
    check_positive(domain_span, "domain_span")
    confidence = check_fraction(confidence, "confidence")
    return randomizer.privacy_interval_width(confidence) / domain_span


@dataclass(frozen=True)
class PosteriorPrivacy:
    """Result of the information-theoretic a-posteriori privacy analysis.

    Attributes
    ----------
    prior_entropy_bits:
        Entropy ``H(X)`` of the discretized prior, in bits.
    conditional_entropy_bits:
        ``H(X | Y)`` after observing the disclosed value, in bits.
    mutual_information_bits:
        ``I(X; Y) = H(X) - H(X | Y)`` — information leaked by disclosure.
    privacy_fraction:
        ``2^{H(X|Y)}`` intervals' worth of residual uncertainty, expressed
        as a fraction of the domain span (1.0 = "Y tells you nothing").
    privacy_loss:
        ``1 - 2^{-I(X;Y)}`` in ``[0, 1)`` — 0 when disclosure is useless to
        an attacker, approaching 1 as it pins X down exactly.
    """

    prior_entropy_bits: float
    conditional_entropy_bits: float
    mutual_information_bits: float
    privacy_fraction: float
    privacy_loss: float


def _entropy_bits(probs: np.ndarray) -> float:
    """Shannon entropy in bits, treating 0 log 0 as 0."""
    positive = probs[probs > 0]
    return float(-(positive * np.log2(positive)).sum())


def posterior_privacy(
    prior: HistogramDistribution,
    randomizer: AdditiveRandomizer,
    *,
    coverage: float = 1.0 - 1e-9,
) -> PosteriorPrivacy:
    """Information-theoretic privacy of disclosing ``X + noise``.

    Discretizes X on ``prior.partition`` and Y on the noise-expanded grid,
    forms the joint ``P(X in p, Y in s) = prior[p] * M[s, p]``, and reports
    the entropy bookkeeping defined by :class:`PosteriorPrivacy`.

    Notes
    -----
    The resolution of the answer is the prior's interval grid: residual
    uncertainty below one interval width is invisible.  Use a finer
    partition for sharper estimates.

    Examples
    --------
    >>> from repro.core import (
    ...     HistogramDistribution, Partition, UniformRandomizer,
    ...     posterior_privacy,
    ... )
    >>> prior = HistogramDistribution.uniform(Partition.uniform(0, 1, 8))
    >>> report = posterior_privacy(prior, UniformRandomizer(half_width=0.5))
    >>> round(report.prior_entropy_bits, 1)
    3.0
    >>> bool(0 < report.privacy_loss < 1)
    True
    """
    x_part = prior.partition
    margin = randomizer.support_half_width(coverage)
    y_part = x_part.expanded(margin)
    # M[s, p] = P(Y in s | X in p); columns sum ~ 1.
    kernel = transition_matrix(y_part, x_part, randomizer, method="integrated")
    joint = kernel * prior.probs[None, :]  # shape (S, P)
    p_y = joint.sum(axis=1)

    h_x = _entropy_bits(prior.probs)
    h_xy = _entropy_bits(joint.ravel())
    h_y = _entropy_bits(p_y)
    h_x_given_y = max(h_xy - h_y, 0.0)
    mutual = max(h_x - h_x_given_y, 0.0)

    # 2^{H(X|Y)} effective intervals of residual uncertainty.
    effective_intervals = 2.0**h_x_given_y
    mean_width = float(x_part.widths.mean())
    privacy_fraction = min(effective_intervals * mean_width / x_part.span, 1.0)
    privacy_loss = 1.0 - 2.0 ** (-mutual)
    return PosteriorPrivacy(
        prior_entropy_bits=h_x,
        conditional_entropy_bits=h_x_given_y,
        mutual_information_bits=mutual,
        privacy_fraction=privacy_fraction,
        privacy_loss=privacy_loss,
    )
