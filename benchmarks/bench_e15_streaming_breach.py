"""E15 — Extensions: streaming reconstruction + worst-case breach table.

E15a: the paper's motivating deployment is an online survey — providers
arrive over time.  Streaming reconstruction folds each batch into a
histogram and refreshes the estimate with warm-started sweeps; the
estimate must converge to the batch result as the stream accumulates.

E15b: the worst-case (rho1, rho2) breach view of the §2 operators at
matched interval privacy: uniform noise has unbounded amplification
(extreme disclosures pin values down) while Gaussian stays bounded — the
worst-case argument the average-case metric cannot express.
"""

from __future__ import annotations

import numpy as np
from _common import once, report

from repro.core import (
    HistogramDistribution,
    StreamingReconstructor,
    amplification_factor,
    breach_analysis,
    noise_for_privacy,
)
from repro.datasets import shapes
from repro.experiments import format_table
from repro.experiments.config import scaled


def _run():
    density = shapes.triangles()
    part = density.partition(20)
    noise = noise_for_privacy("uniform", 0.5, 1.0)
    true = density.true_distribution(part)

    stream = StreamingReconstructor(part, noise)
    rng = np.random.default_rng(1500)
    batch = scaled(2_000)
    streaming_rows = []
    for step in range(1, 6):
        x = density.sample(batch, seed=rng)
        stream.update(noise.randomize(x, seed=rng))
        result = stream.estimate()
        streaming_rows.append(
            (
                stream.n_seen,
                f"{result.distribution.l1_distance(true):.4f}",
                result.n_iterations,
            )
        )

    prior_x = density.sample(scaled(20_000), seed=rng)
    prior = HistogramDistribution.from_values(prior_x, part)
    breach_rows = []
    for kind in ("uniform", "gaussian"):
        for level in (0.25, 1.0):
            randomizer = noise_for_privacy(kind, level, 1.0)
            analysis = breach_analysis(prior, randomizer, rho1=0.06, rho2=0.5)
            gamma = amplification_factor(part, randomizer)
            breach_rows.append(
                (
                    kind,
                    f"{level:g}",
                    f"{analysis.worst_posterior:.3f}",
                    "yes" if analysis.breached else "no",
                    "inf" if np.isinf(gamma) else f"{gamma:.3g}",
                )
            )
    return streaming_rows, breach_rows


def test_e15_streaming_breach(benchmark):
    streaming_rows, breach_rows = once(benchmark, _run)

    streaming_table = format_table(
        ("records seen", "L1 to truth", "sweeps"),
        streaming_rows,
        title="E15a: streaming reconstruction (triangles, uniform, 50% privacy)",
    )
    breach_table = format_table(
        ("noise", "privacy", "worst posterior", "breach?", "amplification"),
        breach_rows,
        title="E15b: worst-case (0.06, 0.5) breach analysis",
    )
    report("e15_streaming_breach", streaming_table + "\n\n" + breach_table)

    # the stream's error decreases as records accumulate
    errors = [float(row[1]) for row in streaming_rows]
    assert errors[-1] < errors[0]
    # warm-started refreshes get cheap
    assert streaming_rows[-1][2] <= streaming_rows[0][2] + 5

    by_key = {(row[0], row[1]): row for row in breach_rows}
    # bounded-support noise: unbounded amplification at every level
    assert by_key[("uniform", "0.25")][4] == "inf"
    assert by_key[("uniform", "1")][4] == "inf"
    # Gaussian amplification is finite at 100% privacy
    assert by_key[("gaussian", "1")][4] != "inf"
