"""E3 — Reconstruction with Gaussian noise, both shapes (paper §3).

The paper runs its reconstruction demonstration with Gaussian
randomization as well; the conclusion (reconstruction ~restores the
original, randomization does not) must be noise-kind independent.
"""

from __future__ import annotations

from _common import once, report

from repro.experiments import ReconstructionConfig, format_table, run_reconstruction
from repro.experiments.config import scaled


def _run_both():
    outcomes = {}
    for shape, seed in (("plateau", 103), ("triangles", 104)):
        config = ReconstructionConfig(
            shape=shape,
            noise="gaussian",
            privacy=0.5,
            n=scaled(10_000),
            n_intervals=20,
            seed=seed,
        )
        outcomes[shape] = run_reconstruction(config)
    return outcomes


def test_e3_reconstruction_gaussian(benchmark):
    outcomes = once(benchmark, _run_both)

    rows = [
        (
            shape,
            f"{o.l1_randomized:.4f}",
            f"{o.l1_reconstructed:.4f}",
            f"{o.ks_randomized:.4f}",
            f"{o.ks_reconstructed:.4f}",
            o.n_iterations,
        )
        for shape, o in outcomes.items()
    ]
    table = format_table(
        ("shape", "L1 rand", "L1 recon", "KS rand", "KS recon", "iters"),
        rows,
        title="E3: Gaussian noise, 50% privacy",
    )
    report("e3_reconstruction_gaussian", table)

    for outcome in outcomes.values():
        assert outcome.l1_reconstructed < 0.6 * outcome.l1_randomized
