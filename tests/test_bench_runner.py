"""Tests for the benchmark runner: measurement, seeding, parallelism."""

from __future__ import annotations

import json
import uuid

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    ExperimentContext,
    derive_seed,
    load_artifact_dir,
    run_experiments,
)
from repro.exceptions import BenchmarkError
from repro.experiments.config import bench_scale, scale_override


def _toy_module(exp_id: str, *, fail: bool = False, tags=("toytag",)) -> str:
    """Source of a self-contained toy benchmark module."""
    body = "raise AssertionError('toy failure')" if fail else (
        "ctx.record(n=ctx.scaled(10))\n"
        "    ctx.report('value table', name='%s')\n"
        "    return {'double_seed': ctx.seed * 2, 'constant': 1.5}" % exp_id
    )
    return (
        "from repro.bench import experiment\n"
        f"@experiment({exp_id!r}, tags={tuple(tags)!r}, seed=3)\n"
        "def run(ctx):\n"
        f"    {body}\n"
    )


@pytest.fixture
def toy_bench(tmp_path):
    """A throwaway benchmarks dir holding two unique toy experiments."""
    suffix = uuid.uuid4().hex[:8]
    ids = (f"zz_a_{suffix}", f"zz_b_{suffix}")
    for i, exp_id in enumerate(ids):
        (tmp_path / f"bench_toy{i}.py").write_text(_toy_module(exp_id))
    return tmp_path, ids


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        assert derive_seed(7, "e1") == derive_seed(7, "e1")
        assert derive_seed(7, "e1") != derive_seed(7, "e2")
        assert derive_seed(7, "e1") != derive_seed(8, "e1")
        assert 0 <= derive_seed(0, "x") < 2**31


class TestContext:
    def test_records_params_and_tables(self, tmp_path):
        ctx = ExperimentContext("e1", 7, results_dir=tmp_path)
        ctx.record(n=10, noise="uniform")
        ctx.record(privacy=0.5)
        ctx.report("a table", name="custom")
        ctx.report("default-name table")
        assert ctx.params == {"n": 10, "noise": "uniform", "privacy": 0.5}
        assert (tmp_path / "custom.txt").read_text() == "a table\n"
        assert (tmp_path / "e1.txt").read_text() == "default-name table\n"

    def test_no_results_dir_keeps_tables_in_memory(self):
        ctx = ExperimentContext("e1", 7)
        ctx.report("text")
        assert ctx.tables == {"e1": "text"}

    def test_record_timing_validates(self):
        ctx = ExperimentContext("e1", 7)
        ctx.record_timing(speedup=2.0)
        assert ctx.timings == {"speedup": 2.0}
        with pytest.raises(BenchmarkError):
            ctx.record_timing(bad={"nested": 1})

    def test_record_validates_params(self):
        import numpy as np

        ctx = ExperimentContext("e1", 7)
        with pytest.raises(BenchmarkError, match="params"):
            ctx.record(n=np.int64(6000))
        assert ctx.params == {}

    def test_scaled_honours_override(self):
        ctx = ExperimentContext("e1", 7)
        with scale_override(3):
            assert ctx.scaled(10) == 30
        assert ctx.scaled(10) == 10


class TestScaleOverride:
    def test_nested_restore(self):
        with scale_override(2):
            assert bench_scale() == 2.0
            with scale_override(5):
                assert bench_scale() == 5.0
            assert bench_scale() == 2.0

    def test_none_is_noop(self, monkeypatch):
        monkeypatch.setenv("PPDM_BENCH_SCALE", "4")
        with scale_override(None):
            assert bench_scale() == 4.0

    def test_invalid_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            with scale_override(-1):
                pass


class TestRunner:
    def test_serial_run_writes_valid_artifacts(self, toy_bench, tmp_path):
        bench_dir, ids = toy_bench
        out = tmp_path / "artifacts"
        artifacts = run_experiments(
            ids=ids, artifacts_dir=out, benchmarks_dir=bench_dir
        )
        assert [a.experiment_id for a in artifacts] == sorted(ids)
        loaded = load_artifact_dir(out)
        for exp_id in ids:
            artifact = loaded[exp_id]
            assert artifact.schema_version == SCHEMA_VERSION
            assert artifact.status == "ok"
            assert artifact.seed == 3  # canonical seed by default
            assert artifact.metrics == {"double_seed": 6, "constant": 1.5}
            assert artifact.params == {"n": 10}
            assert artifact.timing["wall_seconds"] >= 0
            assert artifact.timing["peak_rss_kb"] > 0

    def test_base_seed_derives_per_experiment(self, toy_bench, tmp_path):
        bench_dir, ids = toy_bench
        artifacts = run_experiments(
            ids=ids,
            artifacts_dir=tmp_path / "a",
            benchmarks_dir=bench_dir,
            base_seed=42,
        )
        by_id = {a.experiment_id: a for a in artifacts}
        for exp_id in ids:
            expected = derive_seed(42, exp_id)
            assert by_id[exp_id].seed == expected
            assert by_id[exp_id].metrics["double_seed"] == expected * 2

    def test_scale_reaches_experiments_and_artifact(self, toy_bench, tmp_path):
        bench_dir, ids = toy_bench
        artifacts = run_experiments(
            ids=ids[:1],
            artifacts_dir=tmp_path / "a",
            benchmarks_dir=bench_dir,
            scale=2.5,
        )
        assert artifacts[0].scale == 2.5
        assert artifacts[0].params == {"n": 25}

    def test_parallel_matches_serial(self, toy_bench, tmp_path):
        bench_dir, ids = toy_bench
        serial = run_experiments(
            ids=ids, artifacts_dir=tmp_path / "s", benchmarks_dir=bench_dir
        )
        parallel = run_experiments(
            ids=ids,
            jobs=2,
            artifacts_dir=tmp_path / "p",
            benchmarks_dir=bench_dir,
        )
        assert [a.deterministic_dict() for a in serial] == [
            a.deterministic_dict() for a in parallel
        ]

    def test_failing_experiment_yields_failed_artifact(self, tmp_path):
        exp_id = f"zz_fail_{uuid.uuid4().hex[:8]}"
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "bench_fail.py").write_text(_toy_module(exp_id, fail=True))
        artifacts = run_experiments(
            ids=[exp_id],
            artifacts_dir=tmp_path / "a",
            benchmarks_dir=bench_dir,
        )
        assert artifacts[0].status == "failed"
        assert "toy failure" in artifacts[0].error
        assert artifacts[0].metrics == {}
        # the artifact still lands on disk for post-mortem
        doc = json.loads((tmp_path / "a" / f"BENCH_{exp_id}.json").read_text())
        assert doc["status"] == "failed"

    def test_invalid_jobs_rejected(self, toy_bench, tmp_path):
        bench_dir, _ids = toy_bench
        with pytest.raises(BenchmarkError, match="jobs must be >= 1"):
            run_experiments(
                jobs=0, artifacts_dir=tmp_path, benchmarks_dir=bench_dir
            )

    def test_empty_selection_rejected(self, toy_bench, tmp_path):
        bench_dir, _ids = toy_bench
        with pytest.raises(BenchmarkError, match="matched no experiments"):
            run_experiments(
                ids=[], artifacts_dir=tmp_path, benchmarks_dir=bench_dir
            )

    def test_tables_written_to_results_dir(self, toy_bench, tmp_path):
        bench_dir, ids = toy_bench
        results = tmp_path / "results"
        run_experiments(
            ids=ids[:1],
            artifacts_dir=tmp_path / "a",
            benchmarks_dir=bench_dir,
            results_dir=results,
        )
        assert (results / f"{ids[0]}.txt").read_text() == "value table\n"


class TestSmokeParity:
    """Acceptance: the real smoke suite at ``--jobs 1`` vs ``--jobs 2``."""

    def test_smoke_experiments_bit_identical_across_jobs(
        self, tmp_path, monkeypatch
    ):
        # halve E19's wall-clock floors: two pool workers can share a core
        monkeypatch.setenv("PPDM_E19_SPEEDUP_FLOOR", "0.5")
        kwargs = dict(tags=("smoke",), base_seed=None)
        serial = run_experiments(
            jobs=1, artifacts_dir=tmp_path / "j1", **kwargs
        )
        parallel = run_experiments(
            jobs=2, artifacts_dir=tmp_path / "j2", **kwargs
        )
        assert len(serial) >= 10  # the smoke set stays meaningfully broad
        assert all(a.status == "ok" for a in serial)
        assert [a.deterministic_dict() for a in serial] == [
            a.deterministic_dict() for a in parallel
        ]
        # and every artifact survives a schema-validating reload
        loaded = load_artifact_dir(tmp_path / "j2")
        assert set(loaded) == {a.experiment_id for a in serial}
