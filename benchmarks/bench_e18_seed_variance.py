"""E18 — Methodology: seed variance of the headline comparison.

EXPERIMENTS.md repeatedly cites seed-to-seed variance when reconciling
absolute numbers with the paper.  This bench quantifies it: the headline
Fn-level comparison (ByClass vs Randomized at 100 % privacy) repeated
over independent seeds, reporting mean ± spread.  The measured picture:
ByClass beats Randomized on average for every function and is several
times more stable (std 0.2–2.2 vs 2.6–6.3 points); the margin is wide and
seed-independent where the structure favours reconstruction (Fn1, Fn5),
while Fn3 at 100 % privacy is a genuinely close race whose winner can
flip on individual seeds.
"""

from __future__ import annotations

import numpy as np
from _common import once, report

from repro.datasets import quest
from repro.experiments import format_table
from repro.experiments.config import scaled
from repro.tree import PrivacyPreservingClassifier

SEEDS = (1801, 1845, 1899)
FUNCTIONS = (1, 3, 5)


def _run():
    n_train, n_test = scaled(10_000), scaled(3_000)
    results: dict = {fn: {"byclass": [], "randomized": []} for fn in FUNCTIONS}
    for seed in SEEDS:
        for fn in FUNCTIONS:
            train = quest.generate(n_train, function=fn, seed=seed)
            test = quest.generate(n_test, function=fn, seed=seed + 7)
            randomized, randomizers = quest.randomize(
                train, privacy=1.0, seed=seed + 13
            )
            for strategy in ("byclass", "randomized"):
                clf = PrivacyPreservingClassifier(
                    strategy, privacy=1.0, seed=seed + 29
                )
                clf.fit(train, randomized_table=randomized, randomizers=randomizers)
                results[fn][strategy].append(clf.score(test))
    return results


def test_e18_seed_variance(benchmark):
    results = once(benchmark, _run)

    rows = []
    for fn in FUNCTIONS:
        for strategy in ("byclass", "randomized"):
            accs = np.asarray(results[fn][strategy])
            rows.append(
                (
                    f"Fn{fn}",
                    strategy,
                    f"{100 * accs.mean():.1f}",
                    f"{100 * accs.std():.1f}",
                    f"{100 * accs.min():.1f}",
                    f"{100 * accs.max():.1f}",
                )
            )
    table = format_table(
        ("function", "strategy", "mean %", "std %", "min %", "max %"),
        rows,
        title=f"E18: accuracy across {len(SEEDS)} seeds (100% privacy, uniform)",
    )
    report("e18_seed_variance", table)

    for fn in FUNCTIONS:
        byclass = np.asarray(results[fn]["byclass"])
        randomized = np.asarray(results[fn]["randomized"])
        # the ordering conclusion holds on average for every function ...
        assert byclass.mean() > randomized.mean(), fn
        # ... and ByClass is the far more *stable* method
        assert byclass.std() <= randomized.std() + 0.01, fn
    # where the gap is structural (Fn1 single-attribute, Fn5 joint), it
    # holds with wide margin on every individual seed
    for fn in (1, 5):
        byclass = np.asarray(results[fn]["byclass"])
        randomized = np.asarray(results[fn]["randomized"])
        assert byclass.mean() > randomized.mean() + 0.05, fn
        assert np.all(byclass > randomized), fn
