"""The columnar binary wire format for bulk disclosure ingestion.

JSON is the service's lingua franca, but parsing a float list builds one
Python object per disclosed value — the ingest hot path of a server
absorbing millions of randomized reports should never do that.  This
module defines ``application/x-ppdm-columns``: a versioned, columnar
frame whose float columns are raw little-endian ``float64`` bytes, so
the decoder is ``np.frombuffer`` over the request body (zero copies, no
per-value objects) and the encoder is one ``tobytes()`` per column.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"PPDM"
    4       2     u16    wire version (currently 1)
    6       2     u16    n_attributes
    8       4     i32    shard pin (-1 = unpinned, round-robin)
    12      ...   attribute table, n_attributes entries:
                    u16    name length L (UTF-8 bytes)
                    L      attribute name
                    u64    row count
    ...     ...   columns: row_count x 8 bytes of raw little-endian
                  float64 per attribute, in table order

Frames are self-delimiting, so a request body may concatenate any
number of them (:func:`iter_frames`) and a persistent connection can
stream batch after batch.  The NDJSON fallback
(``application/x-ndjson``) keeps the same many-batches-per-body shape
curl-able: one ``{"batch": ..., "shard": ...}`` JSON object per line.

Malformed frames raise :class:`~repro.exceptions.ValidationError`,
which the HTTP front end maps to status 400.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "CONTENT_TYPE_COLUMNS",
    "CONTENT_TYPE_NDJSON",
    "MAGIC",
    "WIRE_VERSION",
    "decode_columns",
    "encode_columns",
    "encode_ndjson",
    "iter_frames",
    "iter_ndjson",
]

#: content type negotiating the binary columnar frames
CONTENT_TYPE_COLUMNS = "application/x-ppdm-columns"
#: content type for the newline-delimited JSON fallback
CONTENT_TYPE_NDJSON = "application/x-ndjson"
#: the four magic bytes every columnar frame starts with
MAGIC = b"PPDM"
#: current frame version; bumped on any layout change
WIRE_VERSION = 1

_HEADER = struct.Struct("<4sHHi")
_NAME_LEN = struct.Struct("<H")
_ROW_COUNT = struct.Struct("<Q")
_F8 = np.dtype("<f8")


def encode_columns(batch, *, shard: int = None) -> bytes:
    """Encode one ``{attribute: values}`` batch as a columnar frame.

    Parameters
    ----------
    batch:
        Mapping of attribute name to a 1-D sequence of float values.
    shard:
        Optional shard pin carried in the frame header (``None`` routes
        round-robin on the server).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.wire import decode_columns, encode_columns
    >>> frame = encode_columns({"age": [31.5, 47.0]}, shard=2)
    >>> frame[:4]
    b'PPDM'
    >>> batch, shard = decode_columns(frame)
    >>> batch["age"].tolist(), shard
    ([31.5, 47.0], 2)
    """
    if not isinstance(batch, dict):
        raise ValidationError("batch must map attribute -> values")
    columns = []
    table = []
    for name, values in batch.items():
        if not isinstance(name, str) or not name:
            raise ValidationError("attribute names must be non-empty strings")
        encoded_name = name.encode("utf-8")
        if len(encoded_name) > 0xFFFF:
            raise ValidationError(f"attribute name {name!r} is too long")
        arr = np.ascontiguousarray(values, dtype=_F8)
        if arr.ndim != 1:
            raise ValidationError(
                f"batch[{name!r}] must be 1-dimensional, got shape {arr.shape}"
            )
        table.append(
            _NAME_LEN.pack(len(encoded_name))
            + encoded_name
            + _ROW_COUNT.pack(arr.size)
        )
        columns.append(arr.tobytes())
    if len(batch) > 0xFFFF:
        raise ValidationError("a frame holds at most 65535 attributes")
    header = _HEADER.pack(
        MAGIC, WIRE_VERSION, len(batch), -1 if shard is None else int(shard)
    )
    return header + b"".join(table) + b"".join(columns)


def _decode_frame(view: memoryview, offset: int) -> tuple:
    """Decode one frame at ``offset``; return ``(batch, shard, next_offset)``."""
    end = len(view)
    if end - offset < _HEADER.size:
        raise ValidationError(
            f"truncated columnar frame: {end - offset} byte(s) left, "
            f"header needs {_HEADER.size}"
        )
    magic, version, n_attributes, shard = _HEADER.unpack_from(view, offset)
    if magic != MAGIC:
        raise ValidationError(
            f"bad frame magic {bytes(magic)!r}; expected {MAGIC!r} "
            f"(is the body really {CONTENT_TYPE_COLUMNS}?)"
        )
    if version != WIRE_VERSION:
        raise ValidationError(
            f"unsupported wire version {version}; this server speaks "
            f"version {WIRE_VERSION}"
        )
    offset += _HEADER.size
    names = []
    rows = []
    for _ in range(n_attributes):
        if end - offset < _NAME_LEN.size:
            raise ValidationError("truncated columnar frame attribute table")
        (name_len,) = _NAME_LEN.unpack_from(view, offset)
        offset += _NAME_LEN.size
        if end - offset < name_len + _ROW_COUNT.size:
            raise ValidationError("truncated columnar frame attribute table")
        try:
            name = str(view[offset : offset + name_len], "utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(f"attribute name is not UTF-8: {exc}") from exc
        offset += name_len
        (row_count,) = _ROW_COUNT.unpack_from(view, offset)
        offset += _ROW_COUNT.size
        if name in names:
            raise ValidationError(f"duplicate attribute {name!r} in frame")
        names.append(name)
        rows.append(row_count)
    batch = {}
    for name, row_count in zip(names, rows):
        nbytes = row_count * _F8.itemsize
        if end - offset < nbytes:
            raise ValidationError(
                f"truncated columnar frame: column {name!r} declares "
                f"{row_count} rows but only {end - offset} byte(s) remain"
            )
        batch[name] = np.frombuffer(view, dtype=_F8, count=row_count, offset=offset)
        offset += nbytes
    return batch, (None if shard < 0 else shard), offset


def decode_columns(payload) -> tuple:
    """Decode a single columnar frame; return ``(batch, shard)``.

    The inverse of :func:`encode_columns`.  Columns come back as
    read-only ``float64`` views into ``payload`` — no bytes are copied.
    Trailing bytes after the frame are an error; bodies carrying several
    concatenated frames go through :func:`iter_frames`.

    Examples
    --------
    >>> from repro.service.wire import decode_columns, encode_columns
    >>> batch, shard = decode_columns(encode_columns({"x": [0.5]}))
    >>> batch["x"].tolist(), shard
    ([0.5], None)
    """
    view = memoryview(payload)
    batch, shard, offset = _decode_frame(view, 0)
    if offset != len(view):
        raise ValidationError(
            f"{len(view) - offset} trailing byte(s) after the frame; "
            "multi-frame bodies decode with iter_frames()"
        )
    return batch, shard


def iter_frames(payload):
    """Yield ``(batch, shard)`` for every concatenated frame in ``payload``.

    The decoder behind ``POST /ingest`` with
    ``Content-Type: application/x-ppdm-columns``: a client holding a
    persistent connection can pack many batches into one body, and each
    column is decoded as a zero-copy ``np.frombuffer`` view.

    Examples
    --------
    >>> from repro.service.wire import encode_columns, iter_frames
    >>> body = encode_columns({"x": [0.1]}) + encode_columns({"x": [0.9]}, shard=1)
    >>> [(b["x"].tolist(), s) for b, s in iter_frames(body)]
    [([0.1], None), ([0.9], 1)]
    """
    view = memoryview(payload)
    offset = 0
    while offset < len(view):
        batch, shard, offset = _decode_frame(view, offset)
        yield batch, shard


def encode_ndjson(frames) -> bytes:
    """Encode ``(batch, shard)`` pairs as newline-delimited JSON.

    The curl-able fallback with the same many-batches-per-body shape as
    the columnar format: each line is exactly a ``POST /ingest`` JSON
    body (``{"batch": {...}, "shard": i}``, the shard key omitted when
    unpinned).

    Examples
    --------
    >>> from repro.service.wire import encode_ndjson
    >>> encode_ndjson([({"x": [0.5]}, None), ({"x": [0.9]}, 1)])
    b'{"batch": {"x": [0.5]}}\\n{"batch": {"x": [0.9]}, "shard": 1}\\n'
    """
    lines = []
    for batch, shard in frames:
        if not isinstance(batch, dict):
            raise ValidationError("batch must map attribute -> values")
        payload = {
            "batch": {
                name: np.asarray(values, dtype=float).tolist()
                for name, values in batch.items()
            }
        }
        if shard is not None:
            payload["shard"] = int(shard)
        lines.append(json.dumps(payload).encode())
    return b"\n".join(lines) + (b"\n" if lines else b"")


def iter_ndjson(payload):
    """Yield ``(batch, shard)`` for every line of an NDJSON body.

    Blank lines are skipped, so trailing newlines and curl-assembled
    bodies are fine.  Each line must carry a ``"batch"`` object; an
    optional integer ``"shard"`` pins the batch.

    Examples
    --------
    >>> from repro.service.wire import iter_ndjson
    >>> list(iter_ndjson(b'{"batch": {"x": [0.5]}, "shard": 0}\\n'))
    [({'x': [0.5]}, 0)]
    """
    for lineno, line in enumerate(bytes(payload).splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"NDJSON line {lineno} is not valid JSON: {exc}") from exc
        if not isinstance(record, dict) or "batch" not in record:
            raise ValidationError(
                f'NDJSON line {lineno} must be {{"batch": {{name: [values]}}}}'
            )
        batch = record["batch"]
        if not isinstance(batch, dict):
            raise ValidationError(f"NDJSON line {lineno}: 'batch' must map attribute -> values")
        shard = record.get("shard")
        if shard is not None and not isinstance(shard, int):
            raise ValidationError(
                f"NDJSON line {lineno}: 'shard' must be an integer, "
                f"got {type(shard).__name__}"
            )
        yield batch, shard
