"""Privacy/accuracy tradeoff: both of the paper's dials on one table.

Sweeps the privacy level and reports, side by side:

* the *interval* privacy metric of §2.1 (what the noise promises),
* the *information-theoretic* a-posteriori privacy of the follow-on work
  (what an attacker who knows the reconstructed distribution still
  cannot learn), and
* the ByClass classification accuracy that the privacy buys.

Run:  python examples/privacy_tradeoff.py
"""

from repro import PrivacyPreservingClassifier, posterior_privacy, quest
from repro.core import HistogramDistribution
from repro.core.privacy import noise_for_privacy
from repro.experiments import format_table

FUNCTION = 3
LEVELS = (0.1, 0.25, 0.5, 1.0, 2.0)

train = quest.generate(10_000, function=FUNCTION, seed=0)
test = quest.generate(3_000, function=FUNCTION, seed=1)

age = train.attribute("age")
age_prior = HistogramDistribution.from_values(train.column("age"), age.partition(24))

rows = []
for level in LEVELS:
    noise = noise_for_privacy("uniform", level, age.span)
    posterior = posterior_privacy(age_prior, noise)
    clf = PrivacyPreservingClassifier(
        "byclass", privacy=level, seed=2
    ).fit(train)
    rows.append(
        (
            f"{level:g}",
            f"{noise.half_width:.1f} yrs",
            f"{100 * posterior.privacy_fraction:.0f}",
            f"{posterior.mutual_information_bits:.2f}",
            f"{100 * clf.score(test):.1f}",
        )
    )

print(
    format_table(
        (
            "privacy level",
            "age noise (alpha)",
            "posterior privacy %",
            "leaked bits",
            "ByClass accuracy %",
        ),
        rows,
        title=f"Fn{FUNCTION}: what each privacy level costs and buys",
    )
)
print(
    "\nReading: raising the privacy level widens the noise (col 2), leaves\n"
    "the attacker with more residual uncertainty (cols 3-4), and gives up\n"
    "classification accuracy gradually rather than catastrophically (col 5)."
)
