"""Core algorithms of the SIGMOD 2000 reproduction.

This subpackage holds the paper's primary machinery:

* :mod:`repro.core.partition` / :mod:`repro.core.histogram` — interval
  grids over attribute domains and discrete distributions on them,
* :mod:`repro.core.randomizers` — the value-distortion operators of §2,
* :mod:`repro.core.privacy` — the confidence-interval privacy metric,
* :mod:`repro.core.reconstruction` — the Bayesian iterative distribution
  reconstruction of §3,
* :mod:`repro.core.engine` — the batched, kernel-cached reconstruction
  engine behind every reconstruction front-end,
* :mod:`repro.core.em` — the EM refinement (Agrawal–Aggarwal, PODS 2001),
* :mod:`repro.core.correction` — per-record correction used by the tree
  training algorithms of §4.
"""

from repro.core.breach import BreachAnalysis, amplification_factor, breach_analysis
from repro.core.categorical import CategoricalRandomizer, CategoricalReconstructor
from repro.core.correction import correct_records
from repro.core.em import EMReconstructor
from repro.core.engine import (
    EngineConfig,
    KernelCache,
    ReconstructionEngine,
    ReconstructionProblem,
    run_bayes_reference,
)
from repro.core.histogram import HistogramDistribution
from repro.core.joint import JointBayesReconstructor, JointReconstructionResult
from repro.core.partition import Partition
from repro.core.privacy import (
    noise_for_privacy,
    posterior_privacy,
    privacy_of_randomizer,
)
from repro.core.randomizers import (
    GaussianRandomizer,
    NullRandomizer,
    UniformRandomizer,
    ValueClassMembership,
)
from repro.core.reconstruction import BayesReconstructor, ReconstructionResult
from repro.core.streaming import StreamingReconstructor

__all__ = [
    "Partition",
    "HistogramDistribution",
    "UniformRandomizer",
    "GaussianRandomizer",
    "ValueClassMembership",
    "NullRandomizer",
    "BayesReconstructor",
    "EMReconstructor",
    "EngineConfig",
    "KernelCache",
    "ReconstructionEngine",
    "ReconstructionProblem",
    "StreamingReconstructor",
    "JointBayesReconstructor",
    "JointReconstructionResult",
    "ReconstructionResult",
    "correct_records",
    "noise_for_privacy",
    "privacy_of_randomizer",
    "posterior_privacy",
    "breach_analysis",
    "amplification_factor",
    "BreachAnalysis",
    "CategoricalRandomizer",
    "CategoricalReconstructor",
    "run_bayes_reference",
]
