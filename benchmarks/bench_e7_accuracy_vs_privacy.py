"""E7 — Accuracy vs privacy sweep (paper §5's tradeoff figure).

For each function, ByClass accuracy as privacy rises from 10 % to 200 %
of the attribute range, with the Randomized baseline alongside.  Paper
shape: graceful degradation for ByClass; the Randomized baseline falls
off a cliff as noise grows; Fn1 stays nearly flat for ByClass.
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.experiments import (
    ClassificationConfig,
    format_table,
    run_privacy_sweep,
)

LEVELS = (0.1, 0.25, 0.5, 1.0, 2.0)
FUNCTIONS = (1, 2, 3, 4, 5)
STRATEGIES = ("randomized", "byclass")


@experiment(
    "e7",
    title="Accuracy vs privacy sweep, ByClass vs Randomized",
    tags=("classification", "sweep"),
    seed=700,
)
def run_e7(ctx):
    config = ClassificationConfig(
        functions=FUNCTIONS,
        strategies=STRATEGIES,
        noise="uniform",
        n_train=ctx.scaled(10_000),
        n_test=ctx.scaled(3_000),
        seed=ctx.seed,
    )
    ctx.record(
        noise=config.noise,
        n_train=config.n_train,
        n_test=config.n_test,
        levels=",".join(f"{level:g}" for level in LEVELS),
    )
    rows = run_privacy_sweep(config, LEVELS)

    acc = {(r.function, r.strategy, r.privacy): r.accuracy for r in rows}
    table_rows = []
    for fn in FUNCTIONS:
        for strategy in STRATEGIES:
            cells = [f"Fn{fn}", strategy] + [
                f"{100 * acc[(fn, strategy, level)]:.1f}" for level in LEVELS
            ]
            table_rows.append(tuple(cells))
    table = format_table(
        ("function", "strategy") + tuple(f"p={level:g}" for level in LEVELS),
        table_rows,
        title=f"E7: accuracy (%) vs privacy, uniform noise, n_train={config.n_train}",
    )
    ctx.report(table, name="e7_accuracy_vs_privacy")

    metrics = {
        f"fn{fn}_{strategy}_p{level:g}": float(acc[(fn, strategy, level)])
        for fn in FUNCTIONS
        for strategy in STRATEGIES
        for level in LEVELS
    }
    for fn in FUNCTIONS:
        # byclass degrades gracefully: low-privacy beats the 200% point
        assert acc[(fn, "byclass", 0.1)] > acc[(fn, "byclass", 2.0)] - 0.02
        # at high privacy byclass clearly beats the randomized baseline
        assert acc[(fn, "byclass", 2.0)] > acc[(fn, "randomized", 2.0)]
    # Fn1 stays essentially flat for byclass (single-attribute concept)
    assert acc[(1, "byclass", 2.0)] > 0.85
    return metrics


def test_e7_accuracy_vs_privacy(benchmark):
    run_experiment(benchmark, "e7")
