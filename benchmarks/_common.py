"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (see DESIGN.md §3) and
does three things with the resulting table: prints it (visible with
``pytest -s``), saves it under ``benchmarks/results/``, and asserts the
paper's qualitative *shape* so a silent regression fails the bench run.

Dataset sizes honour ``PPDM_BENCH_SCALE`` (1.0 = laptop default,
10 = the paper's scale).
"""

from __future__ import annotations

import warnings
from pathlib import Path

warnings.filterwarnings("ignore", category=UserWarning, module="repro")

RESULTS_DIR = Path(__file__).parent / "results"


def report(experiment_id: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n=== {experiment_id} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
