"""Argument validation helpers shared across the package.

These raise :class:`repro.exceptions.ValidationError` with messages that
name the offending parameter, so API misuse fails fast and readably instead
of surfacing as a NumPy broadcasting error three layers deeper.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def check_1d_array(
    values, name: str = "values", *, allow_empty: bool = False
) -> np.ndarray:
    """Coerce ``values`` to a 1-D float ndarray, rejecting NaN and infinities."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return arr


def check_label_column(
    labels, name: str = "classes", *, n_classes: int | None = None
) -> np.ndarray:
    """Coerce a class-label column to a 1-D ``intp`` array of integers.

    The single validator behind every class-column surface (wire
    encoder, shard layout, training rows): 1-D, numeric, finite,
    integer-valued, and — when ``n_classes`` is given — within
    ``[0, n_classes)``.
    """
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValidationError(
            f"{name} must be a 1-D column of labels, got shape {arr.shape}"
        )
    if arr.size == 0:
        return np.empty(0, dtype=np.intp)
    if not np.issubdtype(arr.dtype, np.number):
        raise ValidationError(f"{name} must hold integer class labels")
    if not np.issubdtype(arr.dtype, np.integer):
        as_float = arr.astype(float)
        if not np.all(np.isfinite(as_float)) or np.any(
            as_float != np.floor(as_float)
        ):
            raise ValidationError(f"{name} must hold integer class labels")
    out = arr.astype(np.intp)
    if n_classes is not None:
        low, high = int(out.min()), int(out.max())
        if low < 0 or high >= n_classes:
            raise ValidationError(
                f"{name} must lie in [0, {n_classes}), got values spanning "
                f"[{low}, {high}]"
            )
    return out


def check_fraction(value, name: str = "value", *, inclusive_low: bool = False) -> float:
    """Validate a fraction in ``(0, 1]`` (or ``[0, 1]`` with ``inclusive_low``)."""
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if inclusive_low else "(0, 1]"
        raise ValidationError(f"{name} must lie in {bound}, got {value}")
    return value


def check_positive(value, name: str = "value") -> float:
    """Validate a strictly positive finite float."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a positive finite number, got {value}")
    return value


def check_probability_vector(
    probs, name: str = "probs", *, atol: float = 1e-8
) -> np.ndarray:
    """Validate a vector of non-negative entries summing to one."""
    arr = check_1d_array(probs, name)
    if np.any(arr < -atol):
        raise ValidationError(f"{name} has negative entries")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, 1e-6):
        raise ValidationError(f"{name} must sum to 1, sums to {total:.6g}")
    # Clean tiny numerical noise so downstream code can rely on exactness.
    arr = np.clip(arr, 0.0, None)
    return arr / arr.sum()
