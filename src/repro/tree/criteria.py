"""Impurity criteria for tree induction (paper §4 uses the gini index).

All functions operate on *class-count* arrays rather than label vectors, so
the split search can evaluate every candidate boundary of an attribute from
one cumulative-sum pass.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def gini(class_counts) -> float:
    """Gini impurity ``1 - sum_c p_c^2`` of one node's class counts."""
    counts = np.asarray(class_counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


def entropy(class_counts) -> float:
    """Shannon entropy (bits) of one node's class counts."""
    counts = np.asarray(class_counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def _gini_rows(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Row-wise gini of an ``(k, C)`` count matrix with row sums ``totals``."""
    safe = np.maximum(totals, 1e-300)
    p = counts / safe[:, None]
    g = 1.0 - (p * p).sum(axis=1)
    return np.where(totals > 0, g, 0.0)


def _entropy_rows(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Row-wise entropy (bits) of an ``(k, C)`` count matrix."""
    safe = np.maximum(totals, 1e-300)
    p = counts / safe[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(p > 0, p * np.log2(p), 0.0)
    h = -terms.sum(axis=1)
    return np.where(totals > 0, h, 0.0)


_ROW_IMPURITY = {"gini": _gini_rows, "entropy": _entropy_rows}

#: impurity criteria accepted by the tree builder
CRITERIA = tuple(_ROW_IMPURITY)


def split_impurities(interval_class_counts, criterion: str = "gini") -> np.ndarray:
    """Weighted impurity of every boundary split of one attribute.

    Parameters
    ----------
    interval_class_counts:
        ``(m, C)`` matrix: rows are the attribute's intervals in order,
        columns are classes; entry ``(t, c)`` counts the node's records of
        class ``c`` whose value falls in interval ``t``.
    criterion:
        ``"gini"`` (the paper's choice) or ``"entropy"``.

    Returns
    -------
    numpy.ndarray of length ``m - 1``: entry ``k`` is the size-weighted
    impurity of splitting "interval <= k" vs "interval > k".  Minimize over
    attributes and boundaries to choose the split.
    """
    counts = np.asarray(interval_class_counts, dtype=float)
    if counts.ndim != 2:
        raise ValidationError(
            f"interval_class_counts must be 2-D (m, C), got shape {counts.shape}"
        )
    if criterion not in _ROW_IMPURITY:
        raise ValidationError(
            f"criterion must be one of {CRITERIA}, got {criterion!r}"
        )
    m = counts.shape[0]
    if m < 2:
        return np.empty(0)

    row_impurity = _ROW_IMPURITY[criterion]
    left = np.cumsum(counts, axis=0)[:-1]  # (m-1, C)
    total = counts.sum(axis=0)
    right = total[None, :] - left
    n_left = left.sum(axis=1)
    n_right = right.sum(axis=1)
    n = max(float(total.sum()), 1e-300)
    return (
        n_left * row_impurity(left, n_left)
        + n_right * row_impurity(right, n_right)
    ) / n
