"""Tests for the worst-case (rho1, rho2) privacy-breach analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.breach import amplification_factor, breach_analysis
from repro.core.histogram import HistogramDistribution
from repro.core.randomizers import GaussianRandomizer, UniformRandomizer
from repro.exceptions import ValidationError


@pytest.fixture
def skewed_prior(unit_partition):
    """A prior with one rare interval (prior 0.01) and a dominant one."""
    probs = np.full(10, 0.01)
    probs[5] = 1.0 - 0.09
    return HistogramDistribution(unit_partition, probs)


class TestAmplification:
    def test_uniform_noise_is_unbounded(self, unit_partition):
        # bounded support => some disclosed intervals impossible for some x
        gamma = amplification_factor(unit_partition, UniformRandomizer(0.2))
        assert gamma == np.inf

    def test_gaussian_noise_is_bounded(self, unit_partition):
        gamma = amplification_factor(unit_partition, GaussianRandomizer(0.5))
        assert np.isfinite(gamma)
        assert gamma >= 1.0

    def test_wider_gaussian_amplifies_less(self, unit_partition):
        narrow = amplification_factor(unit_partition, GaussianRandomizer(0.2))
        wide = amplification_factor(unit_partition, GaussianRandomizer(1.0))
        assert wide < narrow


class TestBreachAnalysis:
    def test_thresholds_validated(self, skewed_prior):
        with pytest.raises(ValidationError):
            breach_analysis(skewed_prior, UniformRandomizer(0.3), rho1=0.5, rho2=0.4)

    def test_posterior_rows_are_distributions(self, skewed_prior):
        result = breach_analysis(skewed_prior, UniformRandomizer(0.3))
        reachable = result.y_mass > 1e-12
        row_sums = result.posterior[reachable].sum(axis=1)
        np.testing.assert_allclose(row_sums, 1.0, atol=1e-9)

    def test_tiny_noise_breaches(self, skewed_prior):
        """Near-identity disclosure pins rare values down: breach."""
        result = breach_analysis(
            skewed_prior, UniformRandomizer(0.005), rho1=0.05, rho2=0.5
        )
        assert result.breached
        assert result.worst_posterior > 0.5

    def test_heavy_uniform_noise_still_breaches(self, skewed_prior):
        """The textbook worst-case result: bounded-support noise breaches.

        However wide the uniform noise, an *extreme* disclosed value is
        only reachable from one end of the domain, so some rare interval
        gets posterior ~1.  This is exactly what the average-case §2.1
        metric cannot see.
        """
        result = breach_analysis(
            skewed_prior, UniformRandomizer(2.0), rho1=0.05, rho2=0.5
        )
        assert result.breached
        assert result.worst_posterior > 0.9
        assert result.amplification == np.inf

    def test_heavy_gaussian_noise_resists(self, skewed_prior):
        """Unbounded-support noise with small amplification resists."""
        result = breach_analysis(
            skewed_prior, GaussianRandomizer(2.0), rho1=0.05, rho2=0.5
        )
        assert not result.breached
        assert result.worst_posterior < 0.5
        assert np.isfinite(result.amplification)

    def test_worst_any_at_least_low_prior_worst(self, skewed_prior):
        result = breach_analysis(skewed_prior, UniformRandomizer(0.3))
        assert result.worst_posterior_any >= result.worst_posterior

    def test_uniform_prior_no_low_prior_targets(self, unit_partition):
        prior = HistogramDistribution.uniform(unit_partition)
        result = breach_analysis(
            prior, UniformRandomizer(0.3), rho1=0.05, rho2=0.5
        )
        # every interval has prior 0.1 > rho1: nothing qualifies as rare
        assert result.worst_posterior == 0.0
        assert not result.breached

    def test_gaussian_breach_monotone_in_sigma(self, skewed_prior):
        worst = [
            breach_analysis(skewed_prior, GaussianRandomizer(s)).worst_posterior
            for s in (0.02, 0.2, 1.0)
        ]
        assert worst[0] > worst[1] > worst[2]

    def test_average_metric_can_hide_worst_case(self, unit_partition):
        """The motivating example: same interval privacy, different breach.

        Uniform and Gaussian noise calibrated to identical 95% interval
        privacy differ sharply in amplification: the uniform operator's
        bounded support makes worst-case inference unboundedly stronger.
        """
        from repro.core.privacy import noise_for_privacy

        uniform = noise_for_privacy("uniform", 1.0, 1.0)
        gaussian = noise_for_privacy("gaussian", 1.0, 1.0)
        gamma_u = amplification_factor(unit_partition, uniform)
        gamma_g = amplification_factor(unit_partition, gaussian)
        assert gamma_u == np.inf
        # huge but finite (~1e8): the uniform operator's worst case is
        # categorically worse despite identical 95% interval privacy
        assert np.isfinite(gamma_g)
